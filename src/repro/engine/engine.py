"""The single-pass streaming race engine.

This is the runtime the paper's "linear time, constant work per event"
claim calls for: one iteration over one event source drives any number of
detectors simultaneously.  The legacy shape (``detector.run(trace)`` once
per detector) pays one full pass of the trace per detector *and* requires
the trace to be materialised; :class:`RaceEngine` pays exactly one pass
and accepts lazily-produced streams.

The engine hands each detector either the backing
:class:`~repro.trace.trace.Trace` (when the source is complete, so
trace-wide optimisations like WCP's queue pruning stay enabled) or a
:class:`StreamContext` -- a lightweight trace stand-in whose
``is_complete`` flag tells detectors not to pre-scan.

Early-stop policies, snapshot cadence and per-detector cost accounting
come from :class:`~repro.engine.config.EngineConfig`.

The per-event core lives in :class:`EnginePass`: one in-flight pass
owning reset/process/snapshot/early-stop/finish semantics and cost
accounting.  :class:`RaceEngine` drives it from a synchronous ``for``
loop, :class:`~repro.engine.async_engine.AsyncRaceEngine` from an
``async for`` loop, and the sharded workers
(:mod:`repro.engine.sharding`) reuse its dispatch/finish core -- the
stepping semantics are implemented exactly once.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Sequence

from repro.core.detector import Detector
from repro.core.races import RaceReport, ReportSnapshot
from repro.engine.config import DetectorSpec, EngineConfig
from repro.engine.sources import EventSource, as_source
from repro.trace.event import Event


class StreamContext:
    """A trace-like stand-in handed to ``Detector.reset`` for live streams.

    Exposes the small protocol detectors consult at reset time -- ``name``,
    ``threads`` (empty; detectors discover threads lazily), ``__len__``
    (events seen so far, updated by the engine), ``is_complete = False``
    so detectors skip whole-trace prescans, and ``registry`` (the source's
    thread-interning table, shared by every detector of the pass so the
    events' pre-stamped tids can be trusted; None when the source does not
    stamp).
    """

    is_complete = False

    def __init__(self, name: str, registry=None) -> None:
        self.name = name
        self.registry = registry
        self.events_seen = 0

    @property
    def threads(self) -> List[str]:
        """No thread census is available ahead of a stream."""
        return []

    def __iter__(self) -> Iterator[Event]:
        return iter(())

    def __len__(self) -> int:
        return self.events_seen

    def __repr__(self) -> str:
        return "StreamContext(%r, events_seen=%d)" % (self.name, self.events_seen)


#: Stop reasons reported on :class:`EngineResult`.
STOP_EXHAUSTED = "exhausted"
STOP_RACE_BUDGET = "race_budget"
STOP_EVENT_BUDGET = "event_budget"


class EngineResult:
    """The outcome of one engine pass: reports keyed by detector name.

    Behaves as a read-only mapping from detector name to
    :class:`~repro.core.races.RaceReport` (duplicate detector names are
    disambiguated with ``#2``, ``#3``, ...), plus run-level metadata:
    ``events`` processed, wall-clock ``elapsed_s``, the ``stop_reason``
    (one of ``"exhausted"``, ``"race_budget"``, ``"event_budget"``) and
    the accumulated ``snapshots``.
    """

    def __init__(
        self,
        source_name: str,
        reports: "Dict[str, RaceReport]",
        events: int,
        elapsed_s: float,
        stop_reason: str,
        snapshots: List[ReportSnapshot],
        supervision: Optional[Dict[str, int]] = None,
    ) -> None:
        self.source_name = source_name
        self.reports = reports
        self.events = events
        self.elapsed_s = elapsed_s
        self.stop_reason = stop_reason
        self.snapshots = snapshots
        #: Recovery counters (sharded worker supervision and/or the run
        #: supervisor's ``coordinator_restarts``); None for a plain
        #: unsupervised pass.
        self.supervision = supervision

    # Mapping-style access -------------------------------------------------

    def __getitem__(self, detector_name: str) -> RaceReport:
        return self.reports[detector_name]

    def __iter__(self) -> Iterator[str]:
        return iter(self.reports)

    def __len__(self) -> int:
        return len(self.reports)

    def __contains__(self, detector_name: object) -> bool:
        return detector_name in self.reports

    def keys(self):
        return self.reports.keys()

    def values(self):
        return self.reports.values()

    def items(self):
        return self.reports.items()

    def get(self, detector_name: str, default: Optional[RaceReport] = None):
        return self.reports.get(detector_name, default)

    # Queries --------------------------------------------------------------

    def has_race(self) -> bool:
        """True when any detector found at least one race."""
        return any(report.has_race() for report in self.reports.values())

    def total_distinct_races(self) -> int:
        """Sum of distinct race-pair counts across detectors."""
        return sum(report.count() for report in self.reports.values())

    def stopped_early(self) -> bool:
        """True when an early-stop policy cut the pass short."""
        return self.stop_reason != STOP_EXHAUSTED

    def summary(self) -> str:
        """Return a short human-readable multi-line run summary."""
        lines = [
            "engine pass over %s: %d event(s), %.3fs, stop=%s" % (
                self.source_name, self.events, self.elapsed_s, self.stop_reason
            )
        ]
        for name, report in self.reports.items():
            lines.append(
                "  %-12s %d distinct race(s), %d raw, %.3fs" % (
                    name, report.count(), report.raw_race_count,
                    float(report.stats.get("time_s", 0.0)),
                )
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "EngineResult(%r, events=%d, %s)" % (
            self.source_name,
            self.events,
            {name: report.count() for name, report in self.reports.items()},
        )


class EnginePass:
    """One in-flight engine pass: the shared per-event stepper.

    Owns everything between detector reset and the final
    :class:`EngineResult`: context construction (real trace vs
    :class:`StreamContext`), reset with cost attribution, per-event
    stepping (renumbering, detector dispatch, snapshot cadence,
    early-stop policies) and finishing.  The drivers differ only in how
    they obtain events:

    * :meth:`RaceEngine.run` pulls them from a synchronous iterator;
    * :meth:`~repro.engine.async_engine.AsyncRaceEngine.run` awaits them
      from an asynchronous one;
    * the sharded workers decode them off the transport wire and call
      :attr:`dispatch` / :meth:`finish_detectors` directly (their
      snapshot/early-stop logic is batch-granular and coordinator-side).

    Protocol::

        pass_ = EnginePass(config, resolved, source_name, trace=..., registry=...)
        pass_.start()
        for event in stream:              # or: async for event in stream
            if pass_.step(event) is not None:
                break
        result = pass_.result()

    ``step`` returns the stop reason (one of the ``STOP_*`` constants)
    when an early-stop policy fires, else None.
    """

    def __init__(
        self,
        config: Optional[EngineConfig],
        detectors: Sequence[Detector],
        source_name: str,
        trace=None,
        registry=None,
        accounting: Optional[bool] = None,
        start_events: int = 0,
        checkpointer=None,
    ) -> None:
        self.config = config if config is not None else EngineConfig()
        self.detectors = list(detectors)
        if len({id(detector) for detector in self.detectors}) != len(
            self.detectors
        ):
            raise ValueError(
                "the same Detector instance appears more than once in the "
                "selection; it would process every event twice -- pass "
                "distinct instances (or names) instead"
            )
        self.source_name = source_name
        self.trace = trace
        # Complete sources hand detectors the real trace so reset-time
        # prescans keep working; streams get a non-prescannable context.
        self.context = (
            trace
            if trace is not None
            else StreamContext(source_name, registry=registry)
        )
        # Per-event attribution only pays off with several detectors; for a
        # single one it necessarily equals the pass total, so skip the two
        # clock reads per event and use the (cleaner) overall elapsed time.
        self.accounting = (
            self.config.cost_accounting and len(self.detectors) > 1
            if accounting is None
            else accounting
        )
        # A resumed pass continues the checkpointed numbering: ``events``
        # stays the *absolute* stream offset, so renumbering, race
        # distances, snapshot cadence and checkpoint offsets all line up
        # with the uninterrupted run.
        self.events = start_events
        self.start_events = start_events
        if self.context is not self.trace:
            self.context.events_seen = start_events
        #: Optional :class:`~repro.engine.checkpoint.Checkpointer`; when
        #: set, the pass persists a checkpoint every ``checkpointer.every``
        #: events through :meth:`step`.
        self.checkpointer = checkpointer
        self.snapshots: List[ReportSnapshot] = []
        self.stop_reason = STOP_EXHAUSTED
        self.elapsed_s = 0.0
        self._started: Optional[float] = None
        self._finished = False
        #: Per-event detector dispatch, bound by :meth:`start` to the
        #: cheapest shape for this pass (see ``_bind_dispatch``).
        self.dispatch = self._dispatch_unbound

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Reset every detector against the pass context and arm dispatch."""
        clock = time.perf_counter
        self._started = clock()
        # reset() may do real per-trace work (e.g. WCP's queue-pruning
        # prescan), so it is part of each detector's attributed cost; the
        # attribution happens after reset() since reset zeroes the counters.
        for detector in self.detectors:
            before = clock()
            detector.reset(self.context)
            if self.accounting:
                detector.account_cost(clock() - before, events=0)
        self._bind_dispatch()

    def _bind_dispatch(self) -> None:
        """Pick the per-event dispatch shape.

        With accounting on, every ``process`` is timed.  With it off the
        pass must pay *nothing* beyond the ``process`` calls themselves:
        a single detector dispatches straight to its bound ``process``
        method, several loop over pre-bound methods -- in neither case is
        ``account_cost`` touched on the per-event path (the bulk
        attribution happens once, in :meth:`finish_detectors`).
        """
        if self.accounting:
            self.dispatch = self._dispatch_accounted
        elif len(self.detectors) == 1:
            self.dispatch = self.detectors[0].process
        else:
            processors = [detector.process for detector in self.detectors]

            def dispatch(event: Event) -> None:
                for process in processors:
                    process(event)

            self.dispatch = dispatch

    def _dispatch_unbound(self, event: Event) -> None:
        raise RuntimeError("EnginePass.start() must be called before step()")

    def _dispatch_accounted(self, event: Event) -> None:
        clock = time.perf_counter
        for detector in self.detectors:
            before = clock()
            detector.process(event)
            detector.account_cost(clock() - before)

    def step(self, event: Event) -> Optional[str]:
        """Feed one event through the pass.

        Renumbers the event to its stream position, dispatches it to
        every detector, maintains the stream context and snapshot
        cadence, and evaluates the early-stop policies.  Returns the
        stop reason when the pass should end, else None.
        """
        events = self.events
        # Streams may carry unnumbered events (builder convention -1);
        # renumber so race distances stay well-defined (preserving the
        # source's interned-tid stamp).
        if event.index != events:
            event = Event(
                events, event.thread, event.etype, event.target,
                event.loc, tid=event.tid,
            )

        self.dispatch(event)

        self.events = events = events + 1
        context = self.context
        if context is not self.trace:
            context.events_seen = events

        config = self.config
        interval = config.snapshot_interval
        if interval is not None and events % interval == 0:
            self.take_snapshots()

        checkpointer = self.checkpointer
        if checkpointer is not None and events % checkpointer.every == 0:
            checkpointer.save_pass(self)

        race_budget = config.race_budget
        if race_budget is not None and any(
            detector.report.count() >= race_budget
            for detector in self.detectors
        ):
            self.stop_reason = STOP_RACE_BUDGET
            return self.stop_reason
        if config.event_budget is not None and events >= config.event_budget:
            self.stop_reason = STOP_EVENT_BUDGET
            return self.stop_reason
        return None

    def finish_detectors(self) -> None:
        """Run every detector's ``finish`` hook (idempotent).

        finish() may still do real work (flush buffered windows), so it
        is both always called and included in the per-detector cost.  In
        no-accounting mode the processed-event census is attributed here
        in one bulk call, keeping ``Detector.cost_events`` (and therefore
        ``Detector.snapshot()``'s default) correct without any per-event
        ``account_cost`` traffic.
        """
        if self._finished:
            return
        self._finished = True
        clock = time.perf_counter
        for detector in self.detectors:
            if self.accounting:
                before = clock()
                detector.finish()
                detector.account_cost(clock() - before, events=0)
            else:
                detector.finish()
                detector.account_cost(0.0, events=self.events)
        if self._started is not None:
            self.elapsed_s = clock() - self._started

    def take_snapshots(self) -> None:
        """Append one snapshot per detector (and fire the callback)."""
        for detector in self.detectors:
            snap = detector.snapshot(events=self.events)
            self.snapshots.append(snap)
            if self.config.snapshot_callback is not None:
                self.config.snapshot_callback(snap)

    def result(self) -> EngineResult:
        """Finish the pass and assemble the :class:`EngineResult`."""
        self.finish_detectors()
        if self.checkpointer is not None:
            # Background checkpoint writes must land before the pass is
            # reported complete (a caller may clear the directory next).
            self.checkpointer.drain()
        events = self.events
        reports: Dict[str, RaceReport] = {}
        for detector in self.detectors:
            per_detector = (
                detector.cost_time_s if self.accounting else self.elapsed_s
            )
            report = detector.finalize_stats(events, per_detector)
            reports[RaceEngine._unique_name(reports, detector.name)] = report

        interval = self.config.snapshot_interval
        if interval is not None and (events == 0 or events % interval != 0):
            self.take_snapshots()

        return EngineResult(
            source_name=self.source_name,
            reports=reports,
            events=events,
            elapsed_s=self.elapsed_s,
            stop_reason=self.stop_reason,
            snapshots=self.snapshots,
        )

    def __repr__(self) -> str:
        return "EnginePass(%r, detectors=%d, events=%d)" % (
            self.source_name, len(self.detectors), self.events,
        )


def prepare_resume_pass(
    config: EngineConfig,
    checkpoint,
    detectors: Optional[Sequence[Detector]],
    event_source,
) -> EnginePass:
    """The shared resume prologue of the sync and async engines.

    Loads/validates the checkpoint, resolves the detector selection
    (rebuilt from the stamps unless explicitly given, in which case it
    must match them), positions the source, restores source-side state,
    and returns a started :class:`EnginePass` whose detectors have been
    restored -- ready for the caller's drive loop.  Implemented once so
    the resume protocol cannot diverge between the two engines.
    """
    from repro.engine.checkpoint import (
        CheckpointMismatchError,
        open_for_resume,
        restore_source_state,
        seek_source,
    )

    loaded, checkpointer = open_for_resume(checkpoint, config)
    if loaded.sharded is not None:
        raise CheckpointMismatchError(
            "checkpoint at offset %d was taken by a sharded run "
            "(%d shard(s)); resume it with ShardedEngine.resume or "
            "resume_engine()" % (loaded.events, loaded.sharded["shards"])
        )

    if detectors is None and config.detectors is None:
        resolved = loaded.build_detectors()
    else:
        resolved = config.resolve_detectors(detectors)
    loaded.match_detectors(resolved)

    seek_source(event_source, loaded.events)
    restore_source_state(event_source, loaded)
    if checkpointer is not None:
        checkpointer.source = event_source

    pass_ = EnginePass(
        config, resolved, getattr(event_source, "name", "stream"),
        trace=getattr(event_source, "trace", None),
        registry=getattr(event_source, "registry", None),
        start_events=loaded.events,
        checkpointer=checkpointer,
    )
    # Reset-time whole-trace precomputation would be overwritten by the
    # restore below; let detectors skip it.
    for detector in resolved:
        detector.restore_pending = True
    pass_.start()
    for detector, blob in zip(resolved, loaded.states):
        detector.restore_state(blob)
    return pass_


class RaceEngine:
    """Drive N detectors over one event source in a single pass.

    Usage::

        engine = RaceEngine(EngineConfig().with_detectors("wcp", "hb"))
        result = engine.run(trace_or_path_or_source)
        result["WCP"].count()

    ``run`` also accepts a ``detectors=`` override, so a default-configured
    engine doubles as a one-liner: ``RaceEngine().run(trace)``.
    """

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config or EngineConfig()

    # ------------------------------------------------------------------ #
    # The single pass
    # ------------------------------------------------------------------ #

    def run(
        self,
        source,
        detectors: Optional[Sequence[DetectorSpec]] = None,
    ) -> EngineResult:
        """Run the configured detectors over ``source`` in one pass.

        ``source`` may be an :class:`~repro.engine.sources.EventSource`, a
        :class:`~repro.trace.trace.Trace`, a file path, or an iterable of
        events (see :func:`~repro.engine.sources.as_source`).  With
        ``config.checkpoint_dir`` set, the pass persists a detector-state
        checkpoint every ``config.checkpoint_every`` events (see
        :mod:`repro.engine.checkpoint`).
        """
        config = self.config
        resolved = config.resolve_detectors(detectors)
        event_source = as_source(source)

        pass_ = EnginePass(
            config, resolved, event_source.name,
            trace=event_source.trace,
            registry=getattr(event_source, "registry", None),
            checkpointer=self._make_checkpointer(resolved, event_source),
        )
        pass_.start()
        step = pass_.step
        for event in event_source:
            if step(event) is not None:
                break
        return pass_.result()

    def resume(
        self,
        source,
        checkpoint,
        detectors: Optional[Sequence[DetectorSpec]] = None,
    ) -> EngineResult:
        """Resume a checkpointed pass over ``source``.

        ``checkpoint`` is a :class:`~repro.engine.checkpoint.Checkpoint`,
        a :class:`~repro.engine.checkpoint.Checkpointer`, or a checkpoint
        directory path (the newest checkpoint is used).  The source is
        positioned at the checkpoint's event offset
        (:func:`~repro.engine.checkpoint.seek_source`), the detectors --
        rebuilt from the checkpoint's stamps unless explicitly selected,
        in which case the selection must match the stamps exactly -- are
        restored, and the pass continues checkpointing into the same
        directory at the original cadence when one was given.
        """
        event_source = as_source(source)
        pass_ = prepare_resume_pass(
            self.config, checkpoint, detectors, event_source
        )
        step = pass_.step
        for event in event_source:
            if step(event) is not None:
                break
        return pass_.result()

    def _make_checkpointer(self, resolved, event_source):
        """Build the run's checkpointer from the configuration (or None)."""
        if self.config.checkpoint_dir is None:
            return None
        from repro.engine.checkpoint import (
            Checkpointer,
            check_snapshot_support,
        )

        check_snapshot_support(resolved)
        checkpointer = Checkpointer(
            self.config.checkpoint_dir,
            every=self.config.checkpoint_every,
            keep=self.config.checkpoint_keep,
        )
        checkpointer.source = event_source
        return checkpointer

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _unique_name(existing: Dict[str, RaceReport], name: str) -> str:
        if name not in existing:
            return name
        suffix = 2
        while "%s#%d" % (name, suffix) in existing:
            suffix += 1
        return "%s#%d" % (name, suffix)

    def __repr__(self) -> str:
        return "RaceEngine(%r)" % (self.config,)
