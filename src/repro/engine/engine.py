"""The single-pass streaming race engine.

This is the runtime the paper's "linear time, constant work per event"
claim calls for: one iteration over one event source drives any number of
detectors simultaneously.  The legacy shape (``detector.run(trace)`` once
per detector) pays one full pass of the trace per detector *and* requires
the trace to be materialised; :class:`RaceEngine` pays exactly one pass
and accepts lazily-produced streams.

The engine hands each detector either the backing
:class:`~repro.trace.trace.Trace` (when the source is complete, so
trace-wide optimisations like WCP's queue pruning stay enabled) or a
:class:`StreamContext` -- a lightweight trace stand-in whose
``is_complete`` flag tells detectors not to pre-scan.

Early-stop policies, snapshot cadence and per-detector cost accounting
come from :class:`~repro.engine.config.EngineConfig`.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Sequence

from repro.core.detector import Detector
from repro.core.races import RaceReport, ReportSnapshot
from repro.engine.config import DetectorSpec, EngineConfig
from repro.engine.sources import EventSource, as_source
from repro.trace.event import Event


class StreamContext:
    """A trace-like stand-in handed to ``Detector.reset`` for live streams.

    Exposes the small protocol detectors consult at reset time -- ``name``,
    ``threads`` (empty; detectors discover threads lazily), ``__len__``
    (events seen so far, updated by the engine), ``is_complete = False``
    so detectors skip whole-trace prescans, and ``registry`` (the source's
    thread-interning table, shared by every detector of the pass so the
    events' pre-stamped tids can be trusted; None when the source does not
    stamp).
    """

    is_complete = False

    def __init__(self, name: str, registry=None) -> None:
        self.name = name
        self.registry = registry
        self.events_seen = 0

    @property
    def threads(self) -> List[str]:
        """No thread census is available ahead of a stream."""
        return []

    def __iter__(self) -> Iterator[Event]:
        return iter(())

    def __len__(self) -> int:
        return self.events_seen

    def __repr__(self) -> str:
        return "StreamContext(%r, events_seen=%d)" % (self.name, self.events_seen)


#: Stop reasons reported on :class:`EngineResult`.
STOP_EXHAUSTED = "exhausted"
STOP_RACE_BUDGET = "race_budget"
STOP_EVENT_BUDGET = "event_budget"


class EngineResult:
    """The outcome of one engine pass: reports keyed by detector name.

    Behaves as a read-only mapping from detector name to
    :class:`~repro.core.races.RaceReport` (duplicate detector names are
    disambiguated with ``#2``, ``#3``, ...), plus run-level metadata:
    ``events`` processed, wall-clock ``elapsed_s``, the ``stop_reason``
    (one of ``"exhausted"``, ``"race_budget"``, ``"event_budget"``) and
    the accumulated ``snapshots``.
    """

    def __init__(
        self,
        source_name: str,
        reports: "Dict[str, RaceReport]",
        events: int,
        elapsed_s: float,
        stop_reason: str,
        snapshots: List[ReportSnapshot],
    ) -> None:
        self.source_name = source_name
        self.reports = reports
        self.events = events
        self.elapsed_s = elapsed_s
        self.stop_reason = stop_reason
        self.snapshots = snapshots

    # Mapping-style access -------------------------------------------------

    def __getitem__(self, detector_name: str) -> RaceReport:
        return self.reports[detector_name]

    def __iter__(self) -> Iterator[str]:
        return iter(self.reports)

    def __len__(self) -> int:
        return len(self.reports)

    def __contains__(self, detector_name: object) -> bool:
        return detector_name in self.reports

    def keys(self):
        return self.reports.keys()

    def values(self):
        return self.reports.values()

    def items(self):
        return self.reports.items()

    def get(self, detector_name: str, default: Optional[RaceReport] = None):
        return self.reports.get(detector_name, default)

    # Queries --------------------------------------------------------------

    def has_race(self) -> bool:
        """True when any detector found at least one race."""
        return any(report.has_race() for report in self.reports.values())

    def total_distinct_races(self) -> int:
        """Sum of distinct race-pair counts across detectors."""
        return sum(report.count() for report in self.reports.values())

    def stopped_early(self) -> bool:
        """True when an early-stop policy cut the pass short."""
        return self.stop_reason != STOP_EXHAUSTED

    def summary(self) -> str:
        """Return a short human-readable multi-line run summary."""
        lines = [
            "engine pass over %s: %d event(s), %.3fs, stop=%s" % (
                self.source_name, self.events, self.elapsed_s, self.stop_reason
            )
        ]
        for name, report in self.reports.items():
            lines.append(
                "  %-12s %d distinct race(s), %d raw, %.3fs" % (
                    name, report.count(), report.raw_race_count,
                    float(report.stats.get("time_s", 0.0)),
                )
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "EngineResult(%r, events=%d, %s)" % (
            self.source_name,
            self.events,
            {name: report.count() for name, report in self.reports.items()},
        )


class RaceEngine:
    """Drive N detectors over one event source in a single pass.

    Usage::

        engine = RaceEngine(EngineConfig().with_detectors("wcp", "hb"))
        result = engine.run(trace_or_path_or_source)
        result["WCP"].count()

    ``run`` also accepts a ``detectors=`` override, so a default-configured
    engine doubles as a one-liner: ``RaceEngine().run(trace)``.
    """

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config or EngineConfig()

    # ------------------------------------------------------------------ #
    # The single pass
    # ------------------------------------------------------------------ #

    def run(
        self,
        source,
        detectors: Optional[Sequence[DetectorSpec]] = None,
    ) -> EngineResult:
        """Run the configured detectors over ``source`` in one pass.

        ``source`` may be an :class:`~repro.engine.sources.EventSource`, a
        :class:`~repro.trace.trace.Trace`, a file path, or an iterable of
        events (see :func:`~repro.engine.sources.as_source`).
        """
        config = self.config
        resolved = config.resolve_detectors(detectors)
        if len({id(detector) for detector in resolved}) != len(resolved):
            raise ValueError(
                "the same Detector instance appears more than once in the "
                "selection; it would process every event twice -- pass "
                "distinct instances (or names) instead"
            )
        event_source = as_source(source)

        # Complete sources hand detectors the real trace so reset-time
        # prescans keep working; streams get a non-prescannable context.
        trace = event_source.trace
        context = (
            trace
            if trace is not None
            else StreamContext(
                event_source.name,
                registry=getattr(event_source, "registry", None),
            )
        )

        # Per-event attribution only pays off with several detectors; for a
        # single one it necessarily equals the pass total, so skip the two
        # clock reads per event and use the (cleaner) overall elapsed time.
        accounting = config.cost_accounting and len(resolved) > 1
        clock = time.perf_counter

        started = clock()
        # reset() may do real per-trace work (e.g. WCP's queue-pruning
        # prescan), so it is part of each detector's attributed cost; the
        # attribution happens after reset() since reset zeroes the counters.
        for detector in resolved:
            before = clock()
            detector.reset(context)
            if accounting:
                detector.account_cost(clock() - before, events=0)
        race_budget = config.race_budget
        event_budget = config.event_budget
        interval = config.snapshot_interval

        snapshots: List[ReportSnapshot] = []
        stop_reason = STOP_EXHAUSTED
        events = 0

        for event in event_source:
            # Streams may carry unnumbered events (builder convention -1);
            # renumber so race distances stay well-defined (preserving the
            # source's interned-tid stamp).
            if event.index != events:
                event = Event(
                    events, event.thread, event.etype, event.target,
                    event.loc, tid=event.tid,
                )

            if accounting:
                for detector in resolved:
                    before = clock()
                    detector.process(event)
                    detector.account_cost(clock() - before)
            else:
                for detector in resolved:
                    detector.process(event)
                    detector.account_cost(0.0)

            events += 1
            if context is not trace:
                context.events_seen = events

            if interval is not None and events % interval == 0:
                self._take_snapshots(resolved, events, snapshots, config)

            if race_budget is not None and any(
                detector.report.count() >= race_budget for detector in resolved
            ):
                stop_reason = STOP_RACE_BUDGET
                break
            if event_budget is not None and events >= event_budget:
                stop_reason = STOP_EVENT_BUDGET
                break

        # finish() may still do real work (flush buffered windows), so it
        # is both always called and included in the per-detector cost.
        for detector in resolved:
            if accounting:
                before = clock()
                detector.finish()
                detector.account_cost(clock() - before, events=0)
            else:
                detector.finish()

        elapsed = time.perf_counter() - started

        reports: Dict[str, RaceReport] = {}
        for detector in resolved:
            per_detector = detector.cost_time_s if accounting else elapsed
            report = detector.finalize_stats(events, per_detector)
            reports[self._unique_name(reports, detector.name)] = report

        if interval is not None and (events == 0 or events % interval != 0):
            self._take_snapshots(resolved, events, snapshots, config)

        return EngineResult(
            source_name=event_source.name,
            reports=reports,
            events=events,
            elapsed_s=elapsed,
            stop_reason=stop_reason,
            snapshots=snapshots,
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _take_snapshots(
        detectors: Sequence[Detector],
        events: int,
        snapshots: List[ReportSnapshot],
        config: EngineConfig,
    ) -> None:
        for detector in detectors:
            snap = detector.snapshot(events=events)
            snapshots.append(snap)
            if config.snapshot_callback is not None:
                config.snapshot_callback(snap)

    @staticmethod
    def _unique_name(existing: Dict[str, RaceReport], name: str) -> str:
        if name not in existing:
            return name
        suffix = 2
        while "%s#%d" % (name, suffix) in existing:
            suffix += 1
        return "%s#%d" % (name, suffix)

    def __repr__(self) -> str:
        return "RaceEngine(%r)" % (self.config,)
