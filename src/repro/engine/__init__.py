"""The streaming race engine: one pass, many detectors, pluggable sources.

This subsystem is the architectural core the paper's linear-time claim
deserves: instead of materialising a :class:`~repro.trace.trace.Trace`
and re-iterating it once per detector, a
:class:`~repro.engine.engine.RaceEngine` takes any
:class:`~repro.engine.sources.EventSource` -- an in-memory trace, a
lazily-parsed log file, a live simulator run -- and multiplexes the
events into N detectors during a **single** iteration, with incremental
:class:`~repro.core.races.ReportSnapshot` emission and early-stop
policies (first race / race budget / event budget) configured through the
fluent :class:`~repro.engine.config.EngineConfig` builder.

The top-level helpers :func:`repro.api.detect_races` and
:func:`repro.api.compare_detectors` are thin wrappers over this engine.
"""

from repro.core.races import ReportSnapshot
from repro.engine.async_engine import AsyncRaceEngine, serve_connection
from repro.engine.checkpoint import (
    Checkpoint,
    Checkpointer,
    CheckpointError,
    CheckpointMismatchError,
)
from repro.engine.config import EngineConfig
from repro.engine.faults import Fault, FaultPlan, WorkerDied
from repro.engine.engine import (
    EnginePass,
    EngineResult,
    RaceEngine,
    StreamContext,
    STOP_EVENT_BUDGET,
    STOP_EXHAUSTED,
    STOP_RACE_BUDGET,
)
from repro.engine.partition import (
    ExplicitPartition,
    HashPartition,
    PartitionPolicy,
    RoundRobinPartition,
    StreamPartitioner,
    make_policy,
)
from repro.engine.runner import CoordinatorFailure, RunSupervisor
from repro.engine.sharding import ShardedEngine, ShardedResult
from repro.engine.supervision import SupervisionSettings, WorkerFailure
from repro.engine.sources import (
    AsyncEventSource,
    CountingSource,
    EventSource,
    FileSource,
    IterableSource,
    LineProtocolSource,
    QueueSource,
    SimulatorSource,
    TraceSource,
    as_async_source,
    as_source,
)
from repro.engine.validate import OnlineValidator, ValidatingSource

__all__ = [
    "RaceEngine",
    "AsyncRaceEngine",
    "ShardedEngine",
    "ShardedResult",
    "Checkpoint",
    "Checkpointer",
    "CheckpointError",
    "CheckpointMismatchError",
    "CoordinatorFailure",
    "EngineConfig",
    "Fault",
    "FaultPlan",
    "RunSupervisor",
    "SupervisionSettings",
    "WorkerDied",
    "WorkerFailure",
    "EnginePass",
    "EngineResult",
    "ReportSnapshot",
    "StreamContext",
    "EventSource",
    "AsyncEventSource",
    "TraceSource",
    "FileSource",
    "IterableSource",
    "SimulatorSource",
    "CountingSource",
    "QueueSource",
    "LineProtocolSource",
    "OnlineValidator",
    "ValidatingSource",
    "serve_connection",
    "as_source",
    "as_async_source",
    "PartitionPolicy",
    "HashPartition",
    "RoundRobinPartition",
    "ExplicitPartition",
    "StreamPartitioner",
    "make_policy",
    "STOP_EXHAUSTED",
    "STOP_RACE_BUDGET",
    "STOP_EVENT_BUDGET",
]
