"""A shared-memory SPSC byte ring for the zero-copy shard transport.

The process transport's original wire format pickled every batch of
event tuples into a pipe: one serialization pass, one kernel copy into
the pipe buffer, one copy out, one unpickle -- per batch, on the
coordinator's hot path.  :class:`ShmRing` replaces the data path with a
single-producer/single-consumer ring buffer living in
:mod:`multiprocessing.shared_memory`: the producer copies an
already-encoded payload straight into the mapped segment and the
consumer reads it straight out, with no intermediate pickling and no
kernel round-trip for the bulk bytes.

Layout of the segment::

    [0:8)    write_pos -- total bytes ever published (monotonic, little-endian)
    [8:16)   read_pos  -- total bytes ever consumed (monotonic)
    [16:16+capacity)   data region; position p lives at offset p % capacity

Monotonic positions (instead of wrapped offsets) make the full/empty
distinction trivial: ``write_pos - read_pos`` is the exact number of
unread bytes, ``capacity - (write_pos - read_pos)`` the free space.
Each side writes only its own position -- the producer publishes
``write_pos`` after the record bytes are in place, the consumer
publishes ``read_pos`` after it has copied a record out -- so the
single-producer/single-consumer discipline needs no lock.  (An aligned
8-byte store is a single ``memcpy`` under CPython; on the supported
platforms that store is not observed torn.)

Records are framed per segment::

    [4 bytes little-endian: payload length | CONTINUATION bit]
    [4 bytes little-endian: crc32 of the segment payload]
    [payload bytes, wrapping around the data region]

Payloads larger than half the ring are split into segments so a single
oversized batch can stream through a smaller ring (producer and
consumer advance in lockstep segment by segment).  The CRC is cheap
insurance on a transport whose failure mode is a worker dying mid-write:
a torn or corrupted record surfaces as :class:`RingCorruption` at the
consumer instead of as a garbled batch decoding into wrong events.

A note on Python 3.11's resource tracker:
:class:`~multiprocessing.shared_memory.SharedMemory` registers segments
with the tracker on *attach* as well as on create (bpo-39959).  That is
harmless here -- shard workers are ``multiprocessing`` children, which
inherit the coordinator's tracker fd (under fork and spawn alike), and
the tracker's per-type cache is a set, so the duplicate registration is
idempotent and :meth:`ShmRing.unlink` on the owning side retires the
name exactly once.  Do **not** "fix" the duplicate by unregistering on
attach: with the shared tracker that cancels the owner's registration
and the eventual unlink trips a KeyError inside the tracker process.
"""

from __future__ import annotations

import struct
import time
import zlib
from multiprocessing import shared_memory
from typing import Callable, Optional

__all__ = [
    "DEFAULT_RING_BYTES",
    "RingCorruption",
    "RingTimeout",
    "ShmRing",
]

#: Default data-region size of a shard ring (per direction).  Sized for
#: several in-flight batches of a few thousand encoded events.
DEFAULT_RING_BYTES = 1 << 20

_HEADER = 16
_FRAME = struct.Struct("<II")
#: High bit of the frame length word: more segments of this record follow.
_CONTINUATION = 0x80000000
_POS = struct.Struct("<Q")


class RingCorruption(RuntimeError):
    """A record failed its CRC or framing check (torn or corrupted write)."""


class RingTimeout(TimeoutError):
    """The peer made no progress within the allowed wait."""


class ShmRing:
    """One single-producer/single-consumer byte ring in shared memory.

    Create with :meth:`create` on the owning side, open with
    :meth:`attach` (by name) on the peer.  Exactly one process may call
    :meth:`push` and exactly one may call :meth:`pop`; both block with a
    progressive backoff and poll the optional ``liveness`` callback so a
    dead peer turns into an exception instead of a hang.
    """

    __slots__ = ("_shm", "capacity", "name", "_owner", "_closed")

    def __init__(self, shm, capacity: int, owner: bool) -> None:
        self._shm = shm
        self.capacity = capacity
        self.name = shm.name
        self._owner = owner
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @classmethod
    def create(cls, capacity: int = DEFAULT_RING_BYTES) -> "ShmRing":
        """Allocate a fresh zeroed ring of ``capacity`` data bytes."""
        if capacity < 64:
            raise ValueError("ring capacity must be at least 64 bytes")
        shm = shared_memory.SharedMemory(create=True, size=_HEADER + capacity)
        shm.buf[:_HEADER] = b"\x00" * _HEADER
        return cls(shm, capacity, owner=True)

    @classmethod
    def attach(cls, name: str, capacity: int) -> "ShmRing":
        """Open an existing ring by name (the peer side).

        The attach-side resource-tracker registration this triggers is
        deliberately left in place -- see the module docstring.
        """
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, capacity, owner=False)

    def close(self) -> None:
        """Unmap the segment from this process."""
        if not self._closed:
            self._closed = True
            self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner side, after both ends closed)."""
        self.close()
        if self._owner:
            self._owner = False
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    # ------------------------------------------------------------------ #
    # Position words
    # ------------------------------------------------------------------ #

    @property
    def _write_pos(self) -> int:
        return _POS.unpack_from(self._shm.buf, 0)[0]

    @_write_pos.setter
    def _write_pos(self, value: int) -> None:
        _POS.pack_into(self._shm.buf, 0, value)

    @property
    def _read_pos(self) -> int:
        return _POS.unpack_from(self._shm.buf, 8)[0]

    @_read_pos.setter
    def _read_pos(self, value: int) -> None:
        _POS.pack_into(self._shm.buf, 8, value)

    def pending_bytes(self) -> int:
        """Unread bytes currently in the ring (diagnostic)."""
        return self._write_pos - self._read_pos

    # ------------------------------------------------------------------ #
    # Blocking helpers
    # ------------------------------------------------------------------ #

    def _wait(
        self,
        ready: Callable[[], bool],
        timeout: Optional[float],
        liveness: Optional[Callable[[], bool]],
        what: str,
    ) -> None:
        """Spin-then-sleep until ``ready()``; police liveness and timeout."""
        for _ in range(64):
            if ready():
                return
        deadline = None if timeout is None else time.monotonic() + timeout
        delay = 0.0002
        while True:
            if ready():
                return
            if liveness is not None and not liveness():
                raise BrokenPipeError(
                    "ring peer died while waiting for %s" % what
                )
            if deadline is not None and time.monotonic() >= deadline:
                raise RingTimeout(
                    "no ring progress for %.1fs waiting for %s"
                    % (timeout, what)
                )
            time.sleep(delay)
            if delay < 0.002:
                delay *= 2

    # ------------------------------------------------------------------ #
    # Data plane
    # ------------------------------------------------------------------ #

    def _copy_in(self, pos: int, data) -> None:
        capacity = self.capacity
        buf = self._shm.buf
        offset = pos % capacity
        first = capacity - offset
        if len(data) <= first:
            buf[_HEADER + offset:_HEADER + offset + len(data)] = data
        else:
            buf[_HEADER + offset:_HEADER + capacity] = data[:first]
            buf[_HEADER:_HEADER + len(data) - first] = data[first:]

    def _copy_out(self, pos: int, length: int) -> bytes:
        capacity = self.capacity
        buf = self._shm.buf
        offset = pos % capacity
        first = capacity - offset
        if length <= first:
            return bytes(buf[_HEADER + offset:_HEADER + offset + length])
        return bytes(buf[_HEADER + offset:_HEADER + capacity]) + bytes(
            buf[_HEADER:_HEADER + length - first]
        )

    def push(
        self,
        payload: bytes,
        timeout: Optional[float] = None,
        liveness: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Publish one record (producer side), blocking while the ring is full.

        Payloads larger than half the ring are streamed as multiple
        CRC-framed segments; the record is reassembled transparently by
        :meth:`pop`.
        """
        capacity = self.capacity
        max_segment = capacity // 2
        view = memoryview(payload)
        total = len(view)
        start = 0
        while True:
            segment = view[start:start + max_segment]
            start += len(segment)
            length_word = len(segment)
            if start < total:
                length_word |= _CONTINUATION
            need = 8 + len(segment)
            write = self._write_pos
            self._wait(
                lambda: capacity - (write - self._read_pos) >= need,
                timeout, liveness, "free space",
            )
            frame = _FRAME.pack(length_word, zlib.crc32(segment))
            self._copy_in(write, frame)
            self._copy_in(write + 8, segment)
            # Publish after the bytes are in place: the consumer never
            # observes a partially written record.
            self._write_pos = write + need
            if start >= total:
                return

    def pop(
        self,
        timeout: Optional[float] = None,
        liveness: Optional[Callable[[], bool]] = None,
    ) -> bytes:
        """Take the next record (consumer side), blocking while empty."""
        parts = []
        while True:
            read = self._read_pos
            self._wait(
                lambda: self._write_pos - read >= 8,
                timeout, liveness, "a record",
            )
            length_word, crc = _FRAME.unpack(self._copy_out(read, 8))
            more = bool(length_word & _CONTINUATION)
            length = length_word & ~_CONTINUATION
            if length > self.capacity - 8:
                raise RingCorruption(
                    "frame claims %d bytes in a %d-byte ring"
                    % (length, self.capacity)
                )
            # The producer publishes a whole segment at once, so once the
            # header is visible the payload is too.
            if self._write_pos - read < 8 + length:
                raise RingCorruption(
                    "truncated segment: %d bytes visible of %d"
                    % (self._write_pos - read - 8, length)
                )
            segment = self._copy_out(read + 8, length)
            if zlib.crc32(segment) != crc:
                raise RingCorruption(
                    "crc mismatch on a %d-byte segment (torn write?)"
                    % length
                )
            self._read_pos = read + 8 + length
            if not more and not parts:
                return segment
            parts.append(segment)
            if not more:
                return b"".join(parts)

    def __repr__(self) -> str:
        return "ShmRing(name=%r, capacity=%d, pending=%d)" % (
            self.name, self.capacity, self.pending_bytes(),
        )
