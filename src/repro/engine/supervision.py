"""Worker supervision and checkpoint-based failover for the sharded engine.

:class:`~repro.engine.sharding.ShardedEngine` splits one pass across N
worker engines; before this module, any worker death (OOM kill, crashed
interpreter, severed pipe) surfaced as a raw ``EOFError`` and lost every
shard's work.  Supervision turns worker death into a bounded, *exact*
recovery:

* **Health tracking** -- every batch a worker processes is acknowledged
  on the existing batch-ack protocol; the supervisor counts outstanding
  batches per shard and treats a configurable silence
  (``heartbeat_s``) with work outstanding -- or a worker whose
  process/thread is simply gone -- as death.
* **Periodic shard snapshots** -- the PR 5 ``("snapshot",)`` message is
  driven on a cadence (``snapshot_every`` batches): the supervisor keeps
  each shard's two newest snapshots in memory, CRC-framed
  (:func:`~repro.engine.checkpoint.frame_blob`), plus every batch sent
  since the *older* of the two, so a single corrupt blob never makes a
  shard unrecoverable.
* **Failover** -- on death the supervisor restarts the worker (bounded
  retries, exponential backoff), restores it from the newest intact
  snapshot and replays the buffered batches.  Workers are deterministic
  functions of their restored state and replayed substream, so the
  merged report is byte-identical to the uninterrupted run -- witnesses
  and distances included.  ``fail_fast`` (or an exhausted retry budget)
  raises one actionable :class:`WorkerFailure` instead.

Every failure mode is reproducible through the deterministic
:class:`~repro.engine.faults.FaultPlan` harness; the parity suite in
``tests/test_supervision.py`` asserts report identity through each one.
"""

from __future__ import annotations

import logging
import time
from typing import Callable, List, Optional

from repro.engine.checkpoint import (
    CheckpointError,
    frame_blob,
    unframe_blob,
)
from repro.engine.faults import FaultPlan, WorkerDied, corrupt_blob
from repro.vectorclock.codec import decode, encode

__all__ = [
    "SupervisedTransport",
    "SupervisionSettings",
    "WorkerFailure",
    "new_supervision_stats",
]

logger = logging.getLogger("repro.engine.supervision")


class WorkerFailure(RuntimeError):
    """A shard worker could not be (or was configured not to be) recovered.

    The single actionable error the sharded engine raises for worker
    death: it names the shard, the cause, and what to do about it --
    never a raw ``EOFError`` out of a pipe.
    """


class SupervisionSettings:
    """The supervision knobs (usually read off an ``EngineConfig``).

    ``retries``
        Restarts allowed per shard before the run fails (0 disables
        failover: any death raises :class:`WorkerFailure` immediately).
    ``heartbeat_s``
        Declare a worker dead after this long with batches outstanding
        and no acknowledgement progress (liveness piggybacks on the
        batch-ack protocol; no extra messages).
    ``snapshot_every``
        Batches between periodic per-shard snapshots.  0 disables the
        cadence -- the supervisor then buffers the shard's whole
        substream (and still refreshes its cache from coordinator
        checkpoints when those are enabled).
    ``backoff_s`` / ``backoff_max_s``
        Exponential restart backoff: ``backoff_s * 2**attempt`` capped
        at ``backoff_max_s``.
    ``shutdown_timeout_s``
        Per-stage worker shutdown patience before escalating
        (``join`` -> ``terminate`` -> ``kill``).
    ``fail_fast``
        Raise on the first worker death instead of recovering.
    """

    def __init__(
        self,
        retries: int = 2,
        heartbeat_s: float = 30.0,
        snapshot_every: int = 64,
        backoff_s: float = 0.05,
        backoff_max_s: float = 2.0,
        shutdown_timeout_s: float = 30.0,
        fail_fast: bool = False,
    ) -> None:
        if retries < 0:
            raise ValueError("shard retries must be >= 0")
        if heartbeat_s <= 0:
            raise ValueError("heartbeat timeout must be positive")
        if snapshot_every < 0:
            raise ValueError("snapshot cadence must be >= 0")
        self.retries = retries
        self.heartbeat_s = heartbeat_s
        self.snapshot_every = snapshot_every
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self.shutdown_timeout_s = shutdown_timeout_s
        self.fail_fast = fail_fast

    @classmethod
    def from_config(cls, config) -> "SupervisionSettings":
        """Read the ``shard_*`` supervision fields off an engine config."""
        return cls(
            retries=config.shard_retries,
            heartbeat_s=config.shard_heartbeat_s,
            snapshot_every=config.shard_snapshot_every,
            backoff_s=config.shard_backoff_s,
            shutdown_timeout_s=config.shard_shutdown_timeout_s,
            fail_fast=config.fail_fast,
        )

    def __repr__(self) -> str:
        return (
            "SupervisionSettings(retries=%d, heartbeat_s=%s, "
            "snapshot_every=%d%s)" % (
                self.retries, self.heartbeat_s, self.snapshot_every,
                ", fail_fast" if self.fail_fast else "",
            )
        )


def new_supervision_stats() -> dict:
    """A fresh run-level supervision counter bag (shared by all shards)."""
    return {
        "worker_restarts": 0,
        "heartbeat_timeouts": 0,
        "snapshot_fallbacks": 0,
        "shutdown_escalations": 0,
        "restarts_by_shard": {},
    }


class SupervisedTransport:
    """One shard's transport, wrapped with health tracking and failover.

    Speaks the exact transport protocol the coordinator already uses
    (``send`` / ``poll_progress`` / ``poll_delta`` / ``snapshot_begin``
    / ``snapshot_end`` / ``snapshot`` / ``finish`` / ``abort``), so the
    coordinator loop is oblivious to recovery.  ``factory(restore)``
    rebuilds the underlying transport -- process, thread or serial --
    from a worker-state dict (or fresh, on ``None``).

    ``recoverable=False`` (a detector without snapshot support) keeps
    the health tracking and error normalization but disables buffering
    and failover: death raises an actionable :class:`WorkerFailure`
    immediately instead of accumulating an unbounded replay buffer.
    """

    def __init__(
        self,
        shard: int,
        factory: Callable[[Optional[dict]], object],
        settings: SupervisionSettings,
        stats: dict,
        plan: Optional[FaultPlan] = None,
        recoverable: bool = True,
    ) -> None:
        self.shard = shard
        self.factory = factory
        self.settings = settings
        self.stats = stats
        self.plan = plan
        self.recoverable = recoverable and settings.retries > 0
        self.transport = factory(None)
        self.restarts = 0
        #: Batches sent over the run (global sequence; replay-invariant).
        self._sent = 0
        #: Batches sent on the *current* underlying transport incarnation.
        self._sent_on_transport = 0
        #: (sequence, batch) pairs since the older retained snapshot.
        self._buffer: List[tuple] = []
        #: Up to two newest snapshots: (covered_sequence, framed_bytes).
        self._snapshots: List[tuple] = []
        self._snapshot_count = 0
        self._last_snapshot_seq = 0
        self._seen_acks = 0
        self._last_ack_change = time.monotonic()
        self._finished = False

    # ------------------------------------------------------------------ #
    # The coordinator-facing transport protocol
    # ------------------------------------------------------------------ #

    def send(self, batch: List[tuple]) -> None:
        # Liveness first, buffer second: a failover triggered here must
        # replay only *previous* batches -- the current one is sent (or
        # re-sent via the except path) below, exactly once.
        self._check_liveness()
        self._sent += 1
        if self.recoverable:
            self._buffer.append((self._sent, batch))
        try:
            self._raw_send(batch)
        except WorkerDied as death:
            self._handle_death(death)
        settings = self.settings
        if (
            self.recoverable
            and settings.snapshot_every
            and self._sent - self._last_snapshot_seq >= settings.snapshot_every
        ):
            self._refresh_snapshot()

    def poll_progress(self):
        try:
            return self.transport.poll_progress()
        except WorkerDied as death:
            self._handle_death(death)
            return self.transport.poll_progress()

    def poll_delta(self):
        try:
            return self.transport.poll_delta()
        except WorkerDied as death:
            self._handle_death(death)
            return None

    def snapshot_begin(self):
        try:
            return ("ok", self.transport.snapshot_begin())
        except WorkerDied as death:
            self._handle_death(death)
            return ("failed", None)

    def snapshot_end(self, token) -> dict:
        status, inner = token
        if status == "ok":
            try:
                state = self.transport.snapshot_end(inner)
                self._store_snapshot(state)
                return state
            except WorkerDied as death:
                self._handle_death(death)
        # The worker died mid-request (or before it): the restarted
        # worker has replayed everything sent, so its state is the state
        # the dead one would have reported.
        state = self.snapshot()
        return state

    def snapshot(self) -> dict:
        try:
            state = self.transport.snapshot()
        except WorkerDied as death:
            self._handle_death(death)
            state = self.transport.snapshot()
        self._store_snapshot(state)
        return state

    def finish(self) -> dict:
        try:
            payload = self.transport.finish()
        except WorkerDied as death:
            self._handle_death(death)
            payload = self.transport.finish()
        self._finished = True
        self._buffer = []
        self._harvest_escalations()
        return payload

    def abort(self) -> None:
        """Hard-stop the worker (coordinator-side exception teardown)."""
        self.transport.abort()
        self._harvest_escalations()

    # ------------------------------------------------------------------ #
    # Health tracking
    # ------------------------------------------------------------------ #

    def outstanding(self) -> int:
        """Batches sent to the current worker and not yet acknowledged."""
        return max(0, self._sent_on_transport - self.transport.acked())

    def _check_liveness(self) -> None:
        """The heartbeat: acks must keep flowing while work is in flight."""
        try:
            self.transport.poll_progress()
        except WorkerDied as death:
            self._handle_death(death)
            return
        now = time.monotonic()
        acked = self.transport.acked()
        if acked != self._seen_acks:
            self._seen_acks = acked
            self._last_ack_change = now
        if self._sent_on_transport - acked <= 0:
            self._last_ack_change = now
            return
        if not self.transport.alive():
            self._failover("worker is no longer alive")
        elif now - self._last_ack_change > self.settings.heartbeat_s:
            self.stats["heartbeat_timeouts"] += 1
            self._failover(
                "no batch ack for %.1fs with %d batch(es) outstanding"
                % (now - self._last_ack_change, self.outstanding())
            )

    def _handle_death(self, death: WorkerDied) -> None:
        """Classify a transport-raised death, then fail over.

        A death tagged ``stalled`` (hung-but-alive thread worker
        condemned on heartbeat expiry by the transport itself) is a
        heartbeat timeout, not a crash -- counted as such so operators
        can tell wedged workers from dying ones.
        """
        if getattr(death, "stalled", False):
            self.stats["heartbeat_timeouts"] += 1
        self._failover(death.cause)

    # ------------------------------------------------------------------ #
    # Snapshots and the replay buffer
    # ------------------------------------------------------------------ #

    def _refresh_snapshot(self) -> None:
        self._last_snapshot_seq = self._sent
        try:
            state = self.transport.snapshot()
        except WorkerDied as death:
            self._handle_death(death)
            return
        self._store_snapshot(state)

    def _store_snapshot(self, state: dict) -> None:
        """Frame, (maybe) corrupt, retain-2, and trim the replay buffer."""
        if not self.recoverable:
            return
        framed = frame_blob(encode(state))
        index = self._snapshot_count
        self._snapshot_count = index + 1
        if self.plan is not None and self.plan.corrupt_snapshot(
            self.shard, index
        ):
            framed = corrupt_blob(framed)
        self._snapshots.append((self._sent, framed))
        if len(self._snapshots) > 2:
            del self._snapshots[0]
        if len(self._snapshots) == 2:
            # The buffer must reach back to the *older* retained
            # snapshot: that is what makes a single corrupt newest blob
            # recoverable instead of fatal.
            horizon = self._snapshots[0][0]
            self._buffer = [
                entry for entry in self._buffer if entry[0] > horizon
            ]

    def _pick_restore(self):
        """Newest intact snapshot as ``(covered_sequence, state_or_None)``."""
        while self._snapshots:
            covered, framed = self._snapshots[-1]
            try:
                state = decode(
                    unframe_blob(framed, what="shard %d snapshot" % self.shard)
                )
                return covered, state
            except (CheckpointError, ValueError) as error:
                self.stats["snapshot_fallbacks"] += 1
                logger.warning(
                    "shard %d: snapshot covering batch %d is corrupt (%s); "
                    "falling back to the previous one",
                    self.shard, covered, error,
                )
                self._snapshots.pop()
        return 0, None

    # ------------------------------------------------------------------ #
    # Failover
    # ------------------------------------------------------------------ #

    def _failover(self, cause: str) -> None:
        settings = self.settings
        if settings.fail_fast:
            raise WorkerFailure(
                "shard %d worker died (%s); failing fast as configured -- "
                "drop --fail-fast (or set shard retries > 0) to enable "
                "snapshot-based failover" % (self.shard, cause)
            )
        if not self.recoverable:
            if settings.retries == 0:
                raise WorkerFailure(
                    "shard %d worker died (%s); failover is disabled "
                    "(shard retries = 0) -- raise --shard-retries to "
                    "recover automatically" % (self.shard, cause)
                )
            raise WorkerFailure(
                "shard %d worker died (%s) and cannot be recovered: "
                "failover needs snapshot-capable detectors"
                % (self.shard, cause)
            )
        if self.restarts >= settings.retries:
            raise WorkerFailure(
                "shard %d worker died again (%s) after %d restart(s); "
                "retry budget exhausted -- raise the shard retry budget "
                "(--shard-retries) or investigate the crash cause"
                % (self.shard, cause, self.restarts)
            )
        self.transport.abort()
        self._harvest_escalations()
        delay = min(
            settings.backoff_max_s, settings.backoff_s * (2 ** self.restarts)
        )
        if delay > 0:
            time.sleep(delay)
        covered, state = self._pick_restore()
        if state is None and self._buffer and self._buffer[0][0] > 1:
            raise WorkerFailure(
                "shard %d worker died (%s) and no intact snapshot remains; "
                "the replay buffer no longer reaches the stream start -- "
                "re-run the analysis" % (self.shard, cause)
            )
        self.restarts += 1
        self.stats["worker_restarts"] += 1
        by_shard = self.stats["restarts_by_shard"]
        by_shard[self.shard] = by_shard.get(self.shard, 0) + 1
        logger.warning(
            "shard %d worker died (%s); restart %d/%d from %s, replaying "
            "%d buffered batch(es)",
            self.shard, cause, self.restarts, settings.retries,
            "snapshot at batch %d" % covered if state is not None
            else "stream start",
            sum(1 for seq, _ in self._buffer if seq > covered),
        )
        self.transport = self.factory(state)
        self._sent_on_transport = 0
        self._seen_acks = 0
        self._last_ack_change = time.monotonic()
        for seq, batch in self._buffer:
            if seq > covered:
                try:
                    self._raw_send(batch)
                except WorkerDied as death:
                    # Died again mid-replay: recurse (budget-bounded).
                    self._handle_death(death)
                    return

    def _raw_send(self, batch: List[tuple]) -> None:
        self.transport.send(batch)
        self._sent_on_transport += 1
        if self.plan is not None and self.plan.break_pipe(
            self.shard, self._sent - 1
        ):
            self.transport.break_pipe()

    def _harvest_escalations(self) -> None:
        taken = self.transport.take_escalations()
        if taken:
            self.stats["shutdown_escalations"] += taken

    def __repr__(self) -> str:
        return "SupervisedTransport(shard=%d, restarts=%d, sent=%d)" % (
            self.shard, self.restarts, self._sent,
        )
