"""Deterministic fault injection for the sharded engine and serve tier.

Fault tolerance that is only ever exercised by real crashes is fault
tolerance that regresses silently.  This module makes every failure mode
the supervision layer (:mod:`repro.engine.supervision`) handles
*constructible*: a :class:`FaultPlan` is a list of one-shot
:class:`Fault` triggers -- kill shard worker ``k`` once it reaches event
``n``, drop or duplicate the ``m``-th batch ack, corrupt the ``j``-th
collected snapshot blob, close a worker pipe after batch ``b``,
disconnect a serve client at event ``n`` -- that the engine's injection
points consult at deterministic positions in the run.  The same plan
therefore produces the same failure on every execution, which is what
lets the parity suite assert byte-identical reports *through* a failure
instead of merely observing recovery in CI chaos runs.

Plans are coordinator-side objects; the only thing that crosses into a
worker is the plain kill threshold (an int), so nothing here needs to be
picklable.  All triggers are one-shot: a restarted worker does not
re-inherit the fault that killed it (bounded-retry exhaustion is tested
by lowering the retry budget, not by a recurring fault).
"""

from __future__ import annotations

from typing import List, Optional

__all__ = [
    "Fault",
    "FaultPlan",
    "InjectedDeath",
    "WorkerDied",
]


class WorkerDied(RuntimeError):
    """A shard worker vanished mid-run (process death, pipe EOF, hang).

    Raised by the transports when the worker side of the protocol is
    gone -- as opposed to a worker-*reported* exception, which is
    deterministic and therefore never retried.  Under supervision this
    triggers failover; with ``fail_fast`` (or the retry budget spent) it
    surfaces wrapped in an actionable
    :class:`~repro.engine.supervision.WorkerFailure` instead of a raw
    ``EOFError`` traceback.
    """

    def __init__(self, shard: int, cause: str) -> None:
        super().__init__(
            "shard %d worker died unexpectedly (%s)" % (shard, cause)
        )
        self.shard = shard
        self.cause = cause


class InjectedDeath(BaseException):
    """Simulated abrupt worker death (thread/serial transports).

    A ``BaseException`` so the worker loops' ordinary ``except
    Exception`` error reporting -- which is reserved for deterministic
    detector failures -- cannot mistake an injected crash for one.
    Process workers do not raise it: they ``os._exit`` so the
    coordinator observes a genuine pipe EOF.
    """


#: Fault kinds understood by the injection points.
KILL_WORKER = "kill_worker"
DROP_ACK = "drop_ack"
DUPLICATE_ACK = "duplicate_ack"
CORRUPT_SNAPSHOT = "corrupt_snapshot"
PIPE_EOF = "pipe_eof"
DISCONNECT = "disconnect"
KILL_COORDINATOR = "kill_coordinator"
CONNECT_REFUSE = "connect_refuse"
CONNECTION_RESET = "connection_reset"
CONNECTION_STALL = "connection_stall"

_KINDS = (
    KILL_WORKER, DROP_ACK, DUPLICATE_ACK, CORRUPT_SNAPSHOT, PIPE_EOF,
    DISCONNECT, KILL_COORDINATOR, CONNECT_REFUSE, CONNECTION_RESET,
    CONNECTION_STALL,
)


class Fault:
    """One deterministic one-shot failure trigger.

    Use the classmethod constructors; ``at`` is the trigger position in
    the unit natural to the kind (absolute event offset for
    ``kill_worker``/``disconnect``, 0-based ack ordinal for the ack
    faults, 0-based collected-snapshot ordinal for
    ``corrupt_snapshot``, 0-based sent-batch ordinal for ``pipe_eof``).
    """

    def __init__(self, kind: str, shard: Optional[int], at: int) -> None:
        if kind not in _KINDS:
            raise ValueError(
                "unknown fault kind %r; available: %s"
                % (kind, ", ".join(_KINDS))
            )
        if at < 0:
            raise ValueError("fault trigger position must be >= 0")
        self.kind = kind
        self.shard = shard
        self.at = at
        self.fired = False

    # -- constructors ---------------------------------------------------- #

    @classmethod
    def kill_worker(cls, shard: int, at_event: int) -> "Fault":
        """Kill shard ``shard``'s worker once it reaches event ``at_event``.

        ``at_event`` counts the worker's *own* processed events (its
        substream position).  Process workers hard-exit (the coordinator
        sees pipe EOF); thread/serial workers die with
        :class:`InjectedDeath`.
        """
        return cls(KILL_WORKER, shard, at_event)

    @classmethod
    def drop_ack(cls, shard: int, ack: int) -> "Fault":
        """Swallow shard ``shard``'s ``ack``-th batch acknowledgement."""
        return cls(DROP_ACK, shard, ack)

    @classmethod
    def duplicate_ack(cls, shard: int, ack: int) -> "Fault":
        """Deliver shard ``shard``'s ``ack``-th acknowledgement twice."""
        return cls(DUPLICATE_ACK, shard, ack)

    @classmethod
    def corrupt_snapshot(cls, shard: int, snapshot: int = 0) -> "Fault":
        """Bit-flip shard ``shard``'s ``snapshot``-th collected blob."""
        return cls(CORRUPT_SNAPSHOT, shard, snapshot)

    @classmethod
    def pipe_eof(cls, shard: int, at_batch: int) -> "Fault":
        """Close shard ``shard``'s transport after sending batch ``at_batch``."""
        return cls(PIPE_EOF, shard, at_batch)

    @classmethod
    def disconnect(cls, at_event: int) -> "Fault":
        """Serve tier: drop the client connection at event ``at_event``."""
        return cls(DISCONNECT, None, at_event)

    @classmethod
    def kill_coordinator(cls, at_event: int) -> "Fault":
        """Hard-kill the supervised engine process at event ``at_event``.

        Consumed by the run supervisor
        (:class:`~repro.engine.runner.RunSupervisor`): the next child
        process it spawns ``os._exit``\\ s once its source has emitted
        ``at_event`` events (an absolute stream offset, resumes
        included) -- indistinguishable from a SIGKILL/OOM from the
        supervisor's side.  One-shot per fault: plan N kills to crash N
        successive children.
        """
        return cls(KILL_COORDINATOR, None, at_event)

    @classmethod
    def refuse_connect(cls, attempt: int) -> "Fault":
        """Client: refuse the ``attempt``-th connection attempt (0-based)."""
        return cls(CONNECT_REFUSE, None, attempt)

    @classmethod
    def reset_connection(cls, at_event: int) -> "Fault":
        """Client: reset the connection mid-line at sent event ``at_event``."""
        return cls(CONNECTION_RESET, None, at_event)

    @classmethod
    def stall_connection(cls, read: int) -> "Fault":
        """Client: time out the ``read``-th response read (0-based)."""
        return cls(CONNECTION_STALL, None, read)

    def __repr__(self) -> str:
        return "Fault(%s, shard=%r, at=%d%s)" % (
            self.kind, self.shard, self.at, ", fired" if self.fired else "",
        )


class FaultPlan:
    """A deterministic set of :class:`Fault` triggers for one run.

    Attach it to a run with
    :meth:`~repro.engine.config.EngineConfig.with_fault_plan` (or
    ``ServeSettings.fault_plan`` for the serve tier).  The engine's
    injection points call the query methods below at fixed positions;
    each matching fault fires exactly once.  After the run,
    :meth:`unfired` lets a test assert every planned fault was actually
    reached.
    """

    def __init__(self, faults: Optional[List[Fault]] = None) -> None:
        self.faults: List[Fault] = list(faults or [])

    def add(self, fault: Fault) -> "FaultPlan":
        self.faults.append(fault)
        return self

    # -- convenience builders -------------------------------------------- #

    @classmethod
    def kill(cls, shard: int, at_event: int) -> "FaultPlan":
        return cls([Fault.kill_worker(shard, at_event)])

    # -- queries (the engine's injection points) ------------------------- #

    def _fire(self, kind: str, shard: Optional[int], position: int) -> bool:
        for fault in self.faults:
            if (
                not fault.fired
                and fault.kind == kind
                and fault.shard == shard
                and fault.at == position
            ):
                fault.fired = True
                return True
        return False

    def take_kill_event(self, shard: int) -> Optional[int]:
        """Consume and return the kill threshold armed for ``shard``."""
        for fault in self.faults:
            if (
                not fault.fired
                and fault.kind == KILL_WORKER
                and fault.shard == shard
            ):
                fault.fired = True
                return fault.at
        return None

    def drop_ack(self, shard: int, ack: int) -> bool:
        """True when shard ``shard``'s ``ack``-th ack must be swallowed."""
        return self._fire(DROP_ACK, shard, ack)

    def duplicate_ack(self, shard: int, ack: int) -> bool:
        """True when shard ``shard``'s ``ack``-th ack arrives twice."""
        return self._fire(DUPLICATE_ACK, shard, ack)

    def corrupt_snapshot(self, shard: int, snapshot: int) -> bool:
        """True when this collected snapshot blob must be bit-flipped."""
        return self._fire(CORRUPT_SNAPSHOT, shard, snapshot)

    def break_pipe(self, shard: int, batch: int) -> bool:
        """True when the transport must lose its pipe after this batch."""
        return self._fire(PIPE_EOF, shard, batch)

    def disconnect_at(self, events: int) -> bool:
        """Serve tier: True when the client connection drops at ``events``."""
        return self._fire(DISCONNECT, None, events)

    def take_coordinator_kill(self) -> Optional[int]:
        """Consume and return the coordinator-kill event threshold."""
        for fault in self.faults:
            if not fault.fired and fault.kind == KILL_COORDINATOR:
                fault.fired = True
                return fault.at
        return None

    def refuse_connect(self, attempt: int) -> bool:
        """Client: True when connection attempt ``attempt`` must be refused."""
        return self._fire(CONNECT_REFUSE, None, attempt)

    def reset_connection_at(self, events: int) -> bool:
        """Client: True when the connection resets at sent event ``events``."""
        return self._fire(CONNECTION_RESET, None, events)

    def stall_read_at(self, read: int) -> bool:
        """Client: True when response read ``read`` must time out."""
        return self._fire(CONNECTION_STALL, None, read)

    # -- bookkeeping ----------------------------------------------------- #

    def fired(self) -> List[Fault]:
        """The faults that have fired so far."""
        return [fault for fault in self.faults if fault.fired]

    def unfired(self) -> List[Fault]:
        """The faults never reached (a test asserting coverage wants [])."""
        return [fault for fault in self.faults if not fault.fired]

    def __repr__(self) -> str:
        return "FaultPlan(%d fault(s), %d fired)" % (
            len(self.faults), len(self.fired()),
        )


def corrupt_blob(blob: bytes, position: Optional[int] = None) -> bytes:
    """Return ``blob`` with one byte bit-flipped (test/injection helper).

    ``position`` defaults to the middle of the blob, which lands inside
    the payload rather than the framing header -- the corruption the CRC
    frame exists to catch.
    """
    if not blob:
        return blob
    index = len(blob) // 2 if position is None else position % len(blob)
    mutated = bytearray(blob)
    mutated[index] ^= 0x55
    return bytes(mutated)
