"""Reusable building blocks for synthetic benchmark traces.

Every generator appends events to a plain list; the caller wraps the list
in a :class:`~repro.trace.trace.Trace` at the end.  The two seeded race
patterns are designed so that each contributes *exactly one* distinct race
pair to the relevant detectors:

* :func:`add_hb_race` -- two unsynchronised writes to a fresh variable by
  two threads: one race pair, visible to HB, WCP, CP and (given enough
  window) the MCM predictor;
* :func:`add_wcp_only_race` -- the paper's Figure 2b shape: the race on
  ``y`` is invisible to HB (the lock's release/acquire orders the two
  critical sections) but visible to WCP; exactly one race pair.

Filler activity (:func:`add_protected_block`, :func:`add_sync_block`) is
fully lock-protected and race-free, so the seeded counts are exact.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.trace.event import Event, EventType


def _append(events: List[Event], thread: str, etype: EventType,
            target: Optional[str], loc: str) -> None:
    events.append(Event(len(events), thread, etype, target, loc))


def add_hb_race(
    events: List[Event],
    first_thread: str,
    second_thread: str,
    variable: str,
    loc_prefix: str,
    gap_filler: Optional[callable] = None,
) -> None:
    """Seed one HB-visible race: two unsynchronised writes to ``variable``.

    ``gap_filler``, when given, is called between the two writes to insert
    arbitrary (race-free) events -- this controls the race distance.
    """
    _append(events, first_thread, EventType.WRITE, variable, "%s.first" % loc_prefix)
    if gap_filler is not None:
        gap_filler()
    _append(events, second_thread, EventType.WRITE, variable, "%s.second" % loc_prefix)


def add_wcp_only_race(
    events: List[Event],
    first_thread: str,
    second_thread: str,
    lock: str,
    variable_prefix: str,
    loc_prefix: str,
    gap_filler: Optional[callable] = None,
) -> None:
    """Seed one race visible to WCP but not to HB (the Figure 2b shape).

    ``first_thread`` writes ``<prefix>_y``, then writes ``<prefix>_x``
    inside a critical section on ``lock``; ``second_thread`` later enters a
    critical section on the same lock, reads ``<prefix>_y`` and then
    ``<prefix>_x``.  HB orders the two critical sections (and hence the
    ``y`` accesses); WCP only orders the ``x`` accesses, leaving the ``y``
    pair racy.  Exactly one distinct race pair results.
    """
    y = "%s_y" % variable_prefix
    x = "%s_x" % variable_prefix
    _append(events, first_thread, EventType.WRITE, y, "%s.wy" % loc_prefix)
    _append(events, first_thread, EventType.ACQUIRE, lock, "%s.acq1" % loc_prefix)
    _append(events, first_thread, EventType.WRITE, x, "%s.wx" % loc_prefix)
    _append(events, first_thread, EventType.RELEASE, lock, "%s.rel1" % loc_prefix)
    if gap_filler is not None:
        gap_filler()
    _append(events, second_thread, EventType.ACQUIRE, lock, "%s.acq2" % loc_prefix)
    _append(events, second_thread, EventType.READ, y, "%s.ry" % loc_prefix)
    _append(events, second_thread, EventType.READ, x, "%s.rx" % loc_prefix)
    _append(events, second_thread, EventType.RELEASE, lock, "%s.rel2" % loc_prefix)


def add_protected_block(
    events: List[Event],
    thread: str,
    lock: str,
    variable: str,
    loc_prefix: str,
    accesses: int = 2,
) -> None:
    """Append one race-free critical section: acq, r/w* on ``variable``, rel."""
    _append(events, thread, EventType.ACQUIRE, lock, "%s.acq" % loc_prefix)
    for position in range(accesses):
        etype = EventType.READ if position % 2 == 0 else EventType.WRITE
        _append(events, thread, etype, variable, "%s.a%d" % (loc_prefix, position))
    _append(events, thread, EventType.WRITE, variable, "%s.w" % loc_prefix)
    _append(events, thread, EventType.RELEASE, lock, "%s.rel" % loc_prefix)


def add_sync_block(
    events: List[Event], thread: str, lock: str, loc_prefix: str
) -> None:
    """Append the paper's ``sync(lock)`` idiom (acq, r, w of the lock's variable, rel)."""
    variable = "%sVar" % lock
    _append(events, thread, EventType.ACQUIRE, lock, "%s.acq" % loc_prefix)
    _append(events, thread, EventType.READ, variable, "%s.r" % loc_prefix)
    _append(events, thread, EventType.WRITE, variable, "%s.w" % loc_prefix)
    _append(events, thread, EventType.RELEASE, lock, "%s.rel" % loc_prefix)


def add_local_activity(
    events: List[Event],
    thread: str,
    variable: str,
    loc_prefix: str,
    accesses: int = 2,
) -> None:
    """Append thread-local (single-thread) accesses; race-free by construction."""
    for position in range(accesses):
        etype = EventType.WRITE if position % 2 == 0 else EventType.READ
        _append(events, thread, etype, variable, "%s.l%d" % (loc_prefix, position))


class FillerMill:
    """Deterministic race-free event filler used to pad traces to a target size.

    Each call to :meth:`emit` appends one protected critical section by a
    round-robin thread.  To keep the filler strictly neutral it must add
    neither races nor cross-thread orderings:

    * filler variables are private to a (thread, lock) pair, so no two
      threads ever touch the same filler variable (no races);
    * filler locks are partitioned among the threads -- each lock is only
      ever used by one thread -- so the filler introduces no
      release-to-acquire happens-before edges that could mask the seeded
      races.

    The locks passed in are still all exercised, which is how the benchmark
    generators hit the paper's per-benchmark lock counts.
    """

    def __init__(
        self,
        events: List[Event],
        threads: List[str],
        locks: List[str],
        rng: Optional[random.Random] = None,
    ) -> None:
        self.events = events
        self.threads = threads
        self.rng = rng or random.Random(0)
        self._counter = 0
        # Partition the locks among the threads; guarantee at least one
        # private lock per thread.
        self._locks_of: dict = {thread: [] for thread in threads}
        for index, lock in enumerate(locks):
            thread = threads[index % len(threads)]
            self._locks_of[thread].append(lock)
        for thread in threads:
            if not self._locks_of[thread]:
                self._locks_of[thread].append("fill_lock_%s" % thread)

    def emit(self, blocks: int = 1) -> None:
        """Append ``blocks`` race-free critical sections (~4 events each)."""
        for _ in range(blocks):
            thread = self.threads[self._counter % len(self.threads)]
            locks = self._locks_of[thread]
            lock = locks[(self._counter // len(self.threads)) % len(locks)]
            variable = "fill_%s_%s" % (thread, lock)
            add_protected_block(
                self.events, thread, lock, variable,
                "fill%d" % self._counter, accesses=1,
            )
            self._counter += 1

    def emit_events(self, approximate_events: int) -> None:
        """Append roughly ``approximate_events`` filler events."""
        blocks = max(0, approximate_events // 4)
        self.emit(blocks)
