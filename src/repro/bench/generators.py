"""Reusable building blocks for synthetic benchmark traces.

Every generator appends events to a plain list; the caller wraps the list
in a :class:`~repro.trace.trace.Trace` at the end.  The two seeded race
patterns are designed so that each contributes *exactly one* distinct race
pair to the relevant detectors:

* :func:`add_hb_race` -- two unsynchronised writes to a fresh variable by
  two threads: one race pair, visible to HB, WCP, CP and (given enough
  window) the MCM predictor;
* :func:`add_wcp_only_race` -- the paper's Figure 2b shape: the race on
  ``y`` is invisible to HB (the lock's release/acquire orders the two
  critical sections) but visible to WCP; exactly one race pair.

Filler activity (:func:`add_protected_block`, :func:`add_sync_block`) is
fully lock-protected and race-free, so the seeded counts are exact.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.trace.event import Event, EventType


def _append(events: List[Event], thread: str, etype: EventType,
            target: Optional[str], loc: str) -> None:
    events.append(Event(len(events), thread, etype, target, loc))


def add_hb_race(
    events: List[Event],
    first_thread: str,
    second_thread: str,
    variable: str,
    loc_prefix: str,
    gap_filler: Optional[callable] = None,
) -> None:
    """Seed one HB-visible race: two unsynchronised writes to ``variable``.

    ``gap_filler``, when given, is called between the two writes to insert
    arbitrary (race-free) events -- this controls the race distance.
    """
    _append(events, first_thread, EventType.WRITE, variable, "%s.first" % loc_prefix)
    if gap_filler is not None:
        gap_filler()
    _append(events, second_thread, EventType.WRITE, variable, "%s.second" % loc_prefix)


def add_wcp_only_race(
    events: List[Event],
    first_thread: str,
    second_thread: str,
    lock: str,
    variable_prefix: str,
    loc_prefix: str,
    gap_filler: Optional[callable] = None,
) -> None:
    """Seed one race visible to WCP but not to HB (the Figure 2b shape).

    ``first_thread`` writes ``<prefix>_y``, then writes ``<prefix>_x``
    inside a critical section on ``lock``; ``second_thread`` later enters a
    critical section on the same lock, reads ``<prefix>_y`` and then
    ``<prefix>_x``.  HB orders the two critical sections (and hence the
    ``y`` accesses); WCP only orders the ``x`` accesses, leaving the ``y``
    pair racy.  Exactly one distinct race pair results.
    """
    y = "%s_y" % variable_prefix
    x = "%s_x" % variable_prefix
    _append(events, first_thread, EventType.WRITE, y, "%s.wy" % loc_prefix)
    _append(events, first_thread, EventType.ACQUIRE, lock, "%s.acq1" % loc_prefix)
    _append(events, first_thread, EventType.WRITE, x, "%s.wx" % loc_prefix)
    _append(events, first_thread, EventType.RELEASE, lock, "%s.rel1" % loc_prefix)
    if gap_filler is not None:
        gap_filler()
    _append(events, second_thread, EventType.ACQUIRE, lock, "%s.acq2" % loc_prefix)
    _append(events, second_thread, EventType.READ, y, "%s.ry" % loc_prefix)
    _append(events, second_thread, EventType.READ, x, "%s.rx" % loc_prefix)
    _append(events, second_thread, EventType.RELEASE, lock, "%s.rel2" % loc_prefix)


def add_protected_block(
    events: List[Event],
    thread: str,
    lock: str,
    variable: str,
    loc_prefix: str,
    accesses: int = 2,
) -> None:
    """Append one race-free critical section: acq, r/w* on ``variable``, rel."""
    _append(events, thread, EventType.ACQUIRE, lock, "%s.acq" % loc_prefix)
    for position in range(accesses):
        etype = EventType.READ if position % 2 == 0 else EventType.WRITE
        _append(events, thread, etype, variable, "%s.a%d" % (loc_prefix, position))
    _append(events, thread, EventType.WRITE, variable, "%s.w" % loc_prefix)
    _append(events, thread, EventType.RELEASE, lock, "%s.rel" % loc_prefix)


def add_sync_block(
    events: List[Event], thread: str, lock: str, loc_prefix: str
) -> None:
    """Append the paper's ``sync(lock)`` idiom (acq, r, w of the lock's variable, rel)."""
    variable = "%sVar" % lock
    _append(events, thread, EventType.ACQUIRE, lock, "%s.acq" % loc_prefix)
    _append(events, thread, EventType.READ, variable, "%s.r" % loc_prefix)
    _append(events, thread, EventType.WRITE, variable, "%s.w" % loc_prefix)
    _append(events, thread, EventType.RELEASE, lock, "%s.rel" % loc_prefix)


def add_local_activity(
    events: List[Event],
    thread: str,
    variable: str,
    loc_prefix: str,
    accesses: int = 2,
) -> None:
    """Append thread-local (single-thread) accesses; race-free by construction."""
    for position in range(accesses):
        etype = EventType.WRITE if position % 2 == 0 else EventType.READ
        _append(events, thread, etype, variable, "%s.l%d" % (loc_prefix, position))


class FillerMill:
    """Deterministic race-free event filler used to pad traces to a target size.

    Each call to :meth:`emit` appends one protected critical section by a
    round-robin thread.  To keep the filler strictly neutral it must add
    neither races nor cross-thread orderings:

    * filler variables are private to a (thread, lock) pair, so no two
      threads ever touch the same filler variable (no races);
    * filler locks are partitioned among the threads -- each lock is only
      ever used by one thread -- so the filler introduces no
      release-to-acquire happens-before edges that could mask the seeded
      races.

    The locks passed in are still all exercised, which is how the benchmark
    generators hit the paper's per-benchmark lock counts.
    """

    def __init__(
        self,
        events: List[Event],
        threads: List[str],
        locks: List[str],
        rng: Optional[random.Random] = None,
    ) -> None:
        self.events = events
        self.threads = threads
        self.rng = rng or random.Random(0)
        self._counter = 0
        # Partition the locks among the threads; guarantee at least one
        # private lock per thread.
        self._locks_of: dict = {thread: [] for thread in threads}
        for index, lock in enumerate(locks):
            thread = threads[index % len(threads)]
            self._locks_of[thread].append(lock)
        for thread in threads:
            if not self._locks_of[thread]:
                self._locks_of[thread].append("fill_lock_%s" % thread)

    def emit(self, blocks: int = 1) -> None:
        """Append ``blocks`` race-free critical sections (~4 events each)."""
        for _ in range(blocks):
            thread = self.threads[self._counter % len(self.threads)]
            locks = self._locks_of[thread]
            lock = locks[(self._counter // len(self.threads)) % len(locks)]
            variable = "fill_%s_%s" % (thread, lock)
            add_protected_block(
                self.events, thread, lock, variable,
                "fill%d" % self._counter, accesses=1,
            )
            self._counter += 1

    def emit_events(self, approximate_events: int) -> None:
        """Append roughly ``approximate_events`` filler events."""
        blocks = max(0, approximate_events // 4)
        self.emit(blocks)


def mixed_vocabulary_events(
    events: List[Event],
    rng: random.Random,
    threads: List[str],
    steps: int,
    mutexes: int = 2,
    rwlocks: int = 2,
    monitors: int = 1,
    barriers: int = 1,
    variables: int = 4,
    loc_prefix: str = "mix",
) -> None:
    """Append a random, well-formed workload over the full event vocabulary.

    The generator only ever emits *legal moves* against the same lock
    discipline :class:`~repro.trace.semantics.LockDiscipline` enforces
    (mutexes and rwlock write sections are exclusive, read sections are
    not re-entrant, releases close the innermost open section with the
    matching release kind, ``wait`` only fires on a free monitor), so the
    result always passes ``Trace(validate=True)`` -- the fuzz tests rely
    on that to compare serial, sharded and async runs on arbitrary seeds.

    A deterministic preamble touches every event kind once (fork/join,
    begin, both rwlock modes, barrier, wait/notify), so even tiny ``steps``
    values exercise the whole registry; the random tail then interleaves
    the vocabulary freely.  Namespaces (``mx*``/``rw*``/``mon*``/``b*``)
    are disjoint so a name is never used as two different lock kinds.
    """
    mutex_names = ["%s_mx%d" % (loc_prefix, i) for i in range(max(1, mutexes))]
    rw_names = ["%s_rw%d" % (loc_prefix, i) for i in range(max(1, rwlocks))]
    monitor_names = ["%s_mon%d" % (loc_prefix, i) for i in range(max(1, monitors))]
    barrier_names = ["%s_b%d" % (loc_prefix, i) for i in range(max(1, barriers))]
    variable_names = ["%s_x%d" % (loc_prefix, i) for i in range(max(1, variables))]

    #: lock -> exclusively holding thread (mutexes, monitors, write mode).
    holder: dict = {}
    #: rwlock -> set of read-holding threads.
    read_holders: dict = {rw: set() for rw in rw_names}
    #: thread -> innermost-last stack of (lock, closing EventType, mode).
    stacks: dict = {thread: [] for thread in threads}

    def loc() -> str:
        return "%s.%d" % (loc_prefix, len(events))

    def emit(thread: str, etype: EventType, target: Optional[str]) -> None:
        _append(events, thread, etype, target, loc())

    def open_excl(thread: str, etype: EventType, lock: str,
                  closer: EventType) -> None:
        emit(thread, etype, lock)
        holder[lock] = thread
        stacks[thread].append((lock, closer, "excl"))

    def close_innermost(thread: str) -> None:
        lock, closer, mode = stacks[thread].pop()
        emit(thread, closer, lock)
        if mode == "read":
            read_holders[lock].discard(thread)
        else:
            holder.pop(lock, None)

    # ---- deterministic coverage preamble ----------------------------- #
    t0, t1 = threads[0], threads[1 % len(threads)]
    child = "%s_child" % loc_prefix
    for thread in threads:
        emit(thread, EventType.BEGIN, None)
    emit(t0, EventType.FORK, child)
    emit(child, EventType.BEGIN, None)
    emit(child, EventType.WRITE, "%s_xfork" % loc_prefix)
    emit(child, EventType.END, None)
    emit(t0, EventType.JOIN, child)
    open_excl(t0, EventType.RACQ_W, rw_names[0], EventType.RREL)
    emit(t0, EventType.WRITE, variable_names[0])
    close_innermost(t0)
    emit(t1, EventType.RACQ_R, rw_names[0])
    read_holders[rw_names[0]].add(t1)
    stacks[t1].append((rw_names[0], EventType.RREL, "read"))
    emit(t1, EventType.READ, variable_names[0])
    close_innermost(t1)
    for thread in (t0, t1):
        emit(thread, EventType.BARRIER, barrier_names[0])
    open_excl(t0, EventType.ACQUIRE, monitor_names[0], EventType.RELEASE)
    emit(t0, EventType.WRITE, variable_names[-1])
    emit(t0, EventType.NOTIFY, monitor_names[0])
    close_innermost(t0)
    open_excl(t1, EventType.WAIT, monitor_names[0], EventType.RELEASE)
    emit(t1, EventType.READ, variable_names[-1])
    close_innermost(t1)

    # ---- random tail ------------------------------------------------- #
    for _ in range(max(0, steps)):
        thread = rng.choice(threads)
        stack = stacks[thread]
        moves = ["access", "access", "barrier", "notify"]
        if stack:
            moves.extend(["close", "close"])
        if len(stack) < 3:
            free_mutexes = [m for m in mutex_names if m not in holder]
            if free_mutexes:
                moves.append("acq")
            if any(
                rw not in holder and thread not in read_holders[rw]
                for rw in rw_names
            ):
                moves.append("racq_r")
            if any(
                rw not in holder and not read_holders[rw] for rw in rw_names
            ):
                moves.append("racq_w")
            if any(mon not in holder for mon in monitor_names):
                moves.append("wait")
        move = rng.choice(moves)
        if move == "access":
            etype = EventType.WRITE if rng.random() < 0.5 else EventType.READ
            emit(thread, etype, rng.choice(variable_names))
        elif move == "close":
            close_innermost(thread)
        elif move == "barrier":
            emit(thread, EventType.BARRIER, rng.choice(barrier_names))
        elif move == "notify":
            emit(thread, EventType.NOTIFY, rng.choice(monitor_names))
        elif move == "acq":
            open_excl(
                thread, EventType.ACQUIRE, rng.choice(free_mutexes),
                EventType.RELEASE,
            )
        elif move == "racq_r":
            rw = rng.choice([
                r for r in rw_names
                if r not in holder and thread not in read_holders[r]
            ])
            emit(thread, EventType.RACQ_R, rw)
            read_holders[rw].add(thread)
            stack.append((rw, EventType.RREL, "read"))
        elif move == "racq_w":
            rw = rng.choice([
                r for r in rw_names if r not in holder and not read_holders[r]
            ])
            open_excl(thread, EventType.RACQ_W, rw, EventType.RREL)
        elif move == "wait":
            mon = rng.choice([m for m in monitor_names if m not in holder])
            open_excl(thread, EventType.WAIT, mon, EventType.RELEASE)

    # ---- epilogue: close every open section, innermost first --------- #
    for thread in threads:
        while stacks[thread]:
            close_innermost(thread)
        emit(thread, EventType.END, None)


def mixed_vocabulary_trace(
    seed: int = 0,
    threads: int = 3,
    steps: int = 200,
    name: Optional[str] = None,
):
    """Build a validated random mixed-vocabulary :class:`Trace`.

    Validation is deliberately on: it is the generator's own discipline
    self-check, so a fuzz failure always means a detector/engine bug, not
    a malformed input.
    """
    from repro.trace.trace import Trace

    rng = random.Random(seed)
    events: List[Event] = []
    thread_names = ["t%d" % i for i in range(max(2, threads))]
    mixed_vocabulary_events(events, rng, thread_names, steps)
    return Trace(
        events, validate=True, name=name or ("mixed-vocab-%d" % seed)
    )
