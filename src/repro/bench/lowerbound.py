"""The linear-space lower-bound trace family (Figure 8 / Theorem 4).

Theorem 4 shows that any single-pass WCP algorithm needs linear space, by
encoding equality of two n-bit strings into a trace whose two ``w(z)``
events are WCP-ordered iff the strings are equal; the algorithm must
therefore remember (a summary of) every one of the first thread's critical
sections until the second thread replays them.

For the empirical counterpart (and the ``bench_lower_bound`` benchmark) we
build a parameterised family in the same spirit:

* thread ``t1`` performs ``n`` critical sections over a *shared* lock
  ``m``, each encoding one bit of ``u`` by also acquiring ``l0`` or ``l1``;
* thread ``t2`` much later performs its own ``n`` critical sections over
  ``m`` encoding ``v``, and finally both threads touch the variable ``z``.

Because none of ``t2``'s releases of ``m`` happen until the very end, the
WCP detector's FIFO queues for ``(m, t2)`` accumulate one entry per bit --
the linear growth measured by ``queue_statistics`` and asserted in the
tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.trace.event import Event, EventType
from repro.trace.trace import Trace


def _bits(value: Optional[Sequence[int]], n: int, default: int) -> List[int]:
    if value is None:
        return [default] * n
    bits = list(value)
    if len(bits) != n:
        raise ValueError("expected %d bits, got %d" % (n, len(bits)))
    if any(bit not in (0, 1) for bit in bits):
        raise ValueError("bits must be 0 or 1")
    return bits


def lower_bound_trace(
    n: int,
    first_bits: Optional[Sequence[int]] = None,
    second_bits: Optional[Sequence[int]] = None,
) -> Trace:
    """Return the adversarial trace with ``n`` bit gadgets per thread.

    ``first_bits`` / ``second_bits`` choose which of the two bit locks each
    gadget uses (defaults: all zeros / all zeros).  The trace has
    ``Theta(n)`` events and forces the WCP detector's queues to grow to
    ``Theta(n)`` entries.
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    u = _bits(first_bits, n, 0)
    v = _bits(second_bits, n, 0)

    events: List[Event] = []

    def emit(thread: str, etype: EventType, target: Optional[str], loc: str) -> None:
        events.append(Event(len(events), thread, etype, target, loc))

    # Phase 1: t1 writes x, then performs n bit gadgets, each a critical
    # section over the shared lock m nested inside the chosen bit lock.
    emit("t1", EventType.ACQUIRE, "b_init", "lb.t1.init.acq")
    emit("t1", EventType.WRITE, "x", "lb.t1.wx")
    emit("t1", EventType.RELEASE, "b_init", "lb.t1.init.rel")
    for index, bit in enumerate(u):
        bit_lock = "l%d" % bit
        emit("t1", EventType.ACQUIRE, bit_lock, "lb.t1.bit%d.acq" % index)
        emit("t1", EventType.ACQUIRE, "m", "lb.t1.bit%d.m.acq" % index)
        emit("t1", EventType.WRITE, "u_%d" % index, "lb.t1.bit%d.w" % index)
        emit("t1", EventType.RELEASE, "m", "lb.t1.bit%d.m.rel" % index)
        emit("t1", EventType.RELEASE, bit_lock, "lb.t1.bit%d.rel" % index)
    emit("t1", EventType.WRITE, "z", "lb.t1.wz")

    # Phase 2: t2 replays its own n gadgets and finally reads x and writes z.
    for index, bit in enumerate(v):
        bit_lock = "l%d" % bit
        emit("t2", EventType.ACQUIRE, bit_lock, "lb.t2.bit%d.acq" % index)
        emit("t2", EventType.ACQUIRE, "m", "lb.t2.bit%d.m.acq" % index)
        emit("t2", EventType.WRITE, "v_%d" % index, "lb.t2.bit%d.w" % index)
        emit("t2", EventType.RELEASE, "m", "lb.t2.bit%d.m.rel" % index)
        emit("t2", EventType.RELEASE, bit_lock, "lb.t2.bit%d.rel" % index)
    emit("t2", EventType.ACQUIRE, "b_init", "lb.t2.init.acq")
    emit("t2", EventType.READ, "x", "lb.t2.rx")
    emit("t2", EventType.RELEASE, "b_init", "lb.t2.init.rel")
    emit("t2", EventType.WRITE, "z", "lb.t2.wz")

    return Trace(events, name="lower_bound_n%d" % n)
