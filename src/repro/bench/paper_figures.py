"""The paper's hand-written example traces (Figures 1-6).

Each function returns the corresponding trace, transcribed line by line
from the paper.  They are used by the test suite to check that each
detector classifies each figure exactly as the paper says it should, and
by ``examples/paper_figures.py`` to walk through the motivation.

Expected classifications (from Sections 1-2.3):

==========  =======  =======  =======  ==========================
Figure      HB race  CP race  WCP race  Ground truth
==========  =======  =======  =======  ==========================
figure_1a   no       no       no        no predictable race
figure_1b   no       yes      yes       predictable race on ``y``
figure_2a   no       no       no        no predictable race
figure_2b   no       no       yes       predictable race on ``y``
figure_3    no       no       yes       predictable race on ``z``
figure_4    no       no       yes       predictable race on ``z``
figure_5    no       no       yes*      predictable deadlock only
==========  =======  =======  =======  ==========================

(*) Figure 5 is the weak-soundness example: WCP flags the conflicting pair
but the only witness is a predictable deadlock, not a race.
"""

from __future__ import annotations

from repro.trace.builder import TraceBuilder
from repro.trace.trace import Trace


def figure_1a() -> Trace:
    """Figure 1a: two locked read-modify-writes; critical sections cannot swap."""
    return (
        TraceBuilder("figure_1a")
        .acquire("t1", "l")
        .read("t1", "x")
        .write("t1", "x")
        .release("t1", "l")
        .acquire("t2", "l")
        .read("t2", "x")
        .write("t2", "x")
        .release("t2", "l")
        .build()
    )


def figure_1b() -> Trace:
    """Figure 1b: critical sections can swap; predictable race on ``y``."""
    return (
        TraceBuilder("figure_1b")
        .write("t1", "y")
        .acquire("t1", "l")
        .read("t1", "x")
        .release("t1", "l")
        .acquire("t2", "l")
        .read("t2", "x")
        .release("t2", "l")
        .read("t2", "y")
        .build()
    )


def figure_2a() -> Trace:
    """Figure 2a: no predictable race (the ``x`` accesses pin the sections)."""
    return (
        TraceBuilder("figure_2a")
        .write("t1", "y")
        .acquire("t1", "l")
        .write("t1", "x")
        .release("t1", "l")
        .acquire("t2", "l")
        .read("t2", "x")
        .read("t2", "y")
        .release("t2", "l")
        .build()
    )


def figure_2b() -> Trace:
    """Figure 2b: same events, swapped lines 6/7; predictable race on ``y``."""
    return (
        TraceBuilder("figure_2b")
        .write("t1", "y")
        .acquire("t1", "l")
        .write("t1", "x")
        .release("t1", "l")
        .acquire("t2", "l")
        .read("t2", "y")
        .read("t2", "x")
        .release("t2", "l")
        .build()
    )


def figure_3() -> Trace:
    """Figure 3: weakening Rule (b) lets WCP see the race on ``z`` that CP misses."""
    return (
        TraceBuilder("figure_3")
        .acquire("t1", "l")
        .sync("t1", "x")
        .read("t1", "z")
        .release("t1", "l")
        .sync("t2", "x")
        .acquire("t2", "l")
        .acquire("t2", "n")
        .release("t2", "n")
        .release("t2", "l")
        .acquire("t3", "n")
        .release("t3", "n")
        .write("t3", "z")
        .build()
    )


def figure_4() -> Trace:
    """Figure 4: a more involved WCP-only predictable race on ``z``."""
    return (
        TraceBuilder("figure_4")
        .acquire("t1", "l")
        .acquire("t1", "m")
        .release("t1", "m")
        .read("t1", "z")
        .release("t1", "l")
        .acquire("t2", "m")
        .acquire("t2", "n")
        .sync("t2", "x")
        .release("t2", "n")
        .release("t2", "m")
        .acquire("t3", "n")
        .acquire("t3", "l")
        .release("t3", "l")
        .sync("t3", "x")
        .write("t3", "z")
        .release("t3", "n")
        .build()
    )


def figure_5() -> Trace:
    """Figure 5: WCP flags ``z`` but the only witness is a predictable deadlock."""
    return (
        TraceBuilder("figure_5")
        .acquire("t1", "l")
        .acquire("t1", "m")
        .release("t1", "m")
        .read("t1", "z")
        .release("t1", "l")
        .acquire("t2", "m")
        .acquire("t2", "n")
        .sync("t2", "x")
        .release("t2", "n")
        .acquire("t3", "n")
        .acquire("t3", "l")
        .release("t3", "l")
        .sync("t3", "x")
        .write("t3", "z")
        .release("t3", "n")
        .sync("t3", "y")
        .sync("t2", "y")
        .release("t2", "m")
        .build()
    )


def figure_6() -> Trace:
    """Figure 6: the trace motivating the L-clocks and FIFO queues of Algorithm 1.

    The per-line thread assignment follows the paper's narration: the
    ``rel(l0)`` of ``t1`` (line 6) is Rule-(a)-ordered before ``t3``'s
    ``w(x)`` (line 17), and ``t2``'s first ``rel(m)`` (line 10) is
    Rule-(b)-ordered before ``t3``'s ``rel(m)`` (line 20), which the
    algorithm discovers through the acquire/release queues.
    """
    builder = TraceBuilder("figure_6")
    builder.acquire("t1", "l0")          # 1
    builder.write("t1", "x")             # 2
    builder.acquire("t2", "m")           # 3
    builder.acrl("t2", "y")              # 4
    builder.acrl("t1", "y")              # 5
    builder.release("t1", "l0")          # 6
    builder.acquire("t1", "l1")          # 7
    builder.acrl("t2", "y")              # 8
    builder.acrl("t1", "y")              # 9
    builder.release("t2", "m")           # 10
    builder.acquire("t2", "m")           # 11
    builder.acrl("t2", "y")              # 12
    builder.acrl("t1", "y")              # 13
    builder.release("t1", "l1")          # 14
    builder.release("t2", "m")           # 15
    builder.acquire("t3", "l0")          # 16
    builder.write("t3", "x")             # 17
    builder.release("t3", "l0")          # 18
    builder.acquire("t3", "m")           # 19
    builder.release("t3", "m")           # 20
    builder.acquire("t3", "l1")          # 21
    builder.release("t3", "l1")          # 22
    builder.acquire("t3", "m")           # 23
    builder.release("t3", "m")           # 24
    return builder.build()


ALL_FIGURES = {
    "figure_1a": figure_1a,
    "figure_1b": figure_1b,
    "figure_2a": figure_2a,
    "figure_2b": figure_2b,
    "figure_3": figure_3,
    "figure_4": figure_4,
    "figure_5": figure_5,
    "figure_6": figure_6,
}
