"""Java-Grande-style medium benchmarks (moldyn, montecarlo, raytracer).

These are synthetic traces (see :mod:`repro.bench.synthetic`) whose scale
and seeded-race structure follow Table 1's second block: all races are
HB-visible (WCP = HB for these programs), but in ``moldyn`` and
``montecarlo`` most races have witnesses far apart in the trace, which is
why the windowed predictor only reports a couple of them (columns 8-10).
The paper-scale event counts (164K / 7.2M / 16K) are reduced to
laptop-scale defaults; the ``scale`` parameter restores any size.
"""

from __future__ import annotations

from typing import Dict

from repro.bench.synthetic import SyntheticSpec

#: Java-Grande-style benchmark specifications.
GRANDE_SPECS: Dict[str, SyntheticSpec] = {
    # 44 races, only ~2 witnessed by the windowed predictor -> 2 local.
    "moldyn": SyntheticSpec(
        "moldyn", events=30_000, threads=3, locks=2,
        hb_races=44, wcp_only_races=0, local_races=2,
    ),
    # 5 races, 1 local.
    "montecarlo": SyntheticSpec(
        "montecarlo", events=36_000, threads=3, locks=3,
        hb_races=5, wcp_only_races=0, local_races=1,
    ),
    # 3 races, all reachable by the predictor.
    "raytracer": SyntheticSpec(
        "raytracer", events=16_000, threads=3, locks=8,
        hb_races=3, wcp_only_races=0, local_races=3,
    ),
}
