"""IBM-Contest-style small benchmarks, built on the simulator substrate.

The paper's first benchmark group (``account`` ... ``pingpong``) consists of
small fork/join Java programs from the IBM Contest suite.  We model each as
a :class:`~repro.simulator.program.Program`: a main thread forks worker
threads, the workers perform some lock-protected work, and a controlled
number of *racy* shared variables are written by exactly two threads
without synchronisation.

The racy writes are placed at the very beginning of each thread's
post-fork execution, before any lock operation, so that no schedule and no
filler work can introduce a happens-before path between them -- the
distinct-race count of the resulting trace is therefore exactly the number
of seeded pairs, independent of the scheduler.  This matches the paper's
Table 1, where HB, WCP and RVPredict all agree on these small programs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.simulator.interpreter import Interpreter
from repro.simulator.program import (
    Acquire, Compute, Fork, Join, Program, Read, Release, Statement, Write,
)
from repro.simulator.scheduler import RandomScheduler
from repro.trace.trace import Trace


class ContestSpec:
    """Description of one fork/join contest-style benchmark."""

    def __init__(
        self,
        name: str,
        workers: int,
        locks: int,
        racy_pairs: Sequence[Tuple[str, str]],
        events: int,
        main_races: int = 0,
    ) -> None:
        self.name = name
        self.workers = workers
        self.locks = locks
        self.racy_pairs = list(racy_pairs)
        self.events = events
        self.main_races = main_races

    @property
    def races(self) -> int:
        """Expected distinct race pairs (HB == WCP for these benchmarks)."""
        return len(self.racy_pairs) + self.main_races

    @property
    def threads(self) -> int:
        return self.workers + 1


def _pairs_among_workers(count: int, workers: int) -> List[Tuple[str, str]]:
    """Return ``count`` distinct worker pairs (cycling when workers are few)."""
    names = ["w%d" % index for index in range(workers)]
    pairs: List[Tuple[str, str]] = []
    step = 0
    while len(pairs) < count:
        for offset in range(1, workers):
            if len(pairs) >= count:
                break
            first = names[step % workers]
            second = names[(step + offset) % workers]
            if first != second:
                pairs.append((first, second))
        step += 1
        if step > count + workers:
            break
    return pairs[:count]


def build_contest_program(spec: ContestSpec, scale: float = 1.0) -> Program:
    """Build the fork/join program for ``spec`` at the given event scale."""
    worker_names = ["w%d" % index for index in range(spec.workers)]
    lock_names = ["cl%d" % index for index in range(max(0, spec.locks))]

    target_events = max(spec.threads * 4, int(spec.events * scale))
    # Each protected work block contributes 6 events (4 when lock-free);
    # fork/join and the racy writes contribute the rest.
    events_per_block = 6 if lock_names else 4
    fixed_events = 2 * spec.workers + 2 * len(spec.racy_pairs) + 2 * spec.main_races
    work_blocks_total = max(
        spec.workers, (target_events - fixed_events) // events_per_block
    )
    blocks_per_worker = max(1, work_blocks_total // max(1, spec.workers))

    # Seed racy writes: variable rv{i} written once by each pair member.
    racy_statements: Dict[str, List[Statement]] = {name: [] for name in worker_names}
    racy_statements["main"] = []
    for index, (first, second) in enumerate(spec.racy_pairs):
        variable = "rv%d" % index
        racy_statements[first].append(
            Write(variable, loc="%s.race%d.%s" % (spec.name, index, first))
        )
        racy_statements[second].append(
            Write(variable, loc="%s.race%d.%s" % (spec.name, index, second))
        )
    for index in range(spec.main_races):
        variable = "mv%d" % index
        worker = worker_names[index % spec.workers]
        racy_statements["main"].append(
            Write(variable, loc="%s.mrace%d.main" % (spec.name, index))
        )
        racy_statements[worker].append(
            Write(variable, loc="%s.mrace%d.%s" % (spec.name, index, worker))
        )

    threads: Dict[str, List[Statement]] = {}

    main: List[Statement] = []
    for worker in worker_names:
        main.append(Fork(worker, loc="%s.main.fork.%s" % (spec.name, worker)))
    main.extend(racy_statements["main"])
    main.append(Compute(2))
    for worker in worker_names:
        main.append(Join(worker, loc="%s.main.join.%s" % (spec.name, worker)))
    threads["main"] = main

    for position, worker in enumerate(worker_names):
        body: List[Statement] = []
        body.extend(racy_statements[worker])
        # Lock-protected work on shared per-lock variables.  Locks are taken
        # from the shared pool round-robin; the protected variable is shared
        # by every worker using that lock (race-free because consistently
        # protected, and the conflicting accesses inside the critical
        # sections keep the WCP queues drained, as in real programs).
        for block in range(blocks_per_worker):
            if lock_names:
                if spec.workers >= len(lock_names):
                    # Enough workers to cover every lock: each worker sticks
                    # to one lock (frequent releases keep the queues short).
                    lock = lock_names[position % len(lock_names)]
                else:
                    # Fewer workers than locks: rotate so every lock appears.
                    lock = lock_names[(position + block) % len(lock_names)]
                variable = "shared_%s" % lock
                private = "priv_%s" % worker
                body.append(Acquire(lock))
                body.append(Read(variable))
                body.append(Read(private))
                body.append(Write(private))
                body.append(Write(variable))
                body.append(Release(lock))
            else:
                variable = "local_%s" % worker
                body.append(Read(variable))
                body.append(Write(variable))
                body.append(Compute(1))
                body.append(Write(variable))
        threads[worker] = body

    return Program(threads, initial_threads=["main"], name=spec.name)


def build_contest_trace(spec: ContestSpec, scale: float = 1.0, seed: int = 0) -> Trace:
    """Run the contest program under a seeded random scheduler and return the trace."""
    program = build_contest_program(spec, scale=scale)
    scheduler = RandomScheduler(seed=seed)
    return Interpreter(program, scheduler).run()


#: The nine IBM-Contest-style benchmark specifications (Table 1, first block).
CONTEST_SPECS: Dict[str, ContestSpec] = {
    "account": ContestSpec(
        "account", workers=3, locks=3,
        racy_pairs=_pairs_among_workers(3, 3), main_races=1, events=130,
    ),
    "airline": ContestSpec(
        "airline", workers=1, locks=0,
        racy_pairs=[], main_races=4, events=128,
    ),
    "array": ContestSpec(
        "array", workers=2, locks=2,
        racy_pairs=[], main_races=0, events=47,
    ),
    "boundedbuffer": ContestSpec(
        "boundedbuffer", workers=1, locks=2,
        racy_pairs=[], main_races=2, events=333,
    ),
    "bubblesort": ContestSpec(
        "bubblesort", workers=9, locks=2,
        racy_pairs=_pairs_among_workers(6, 9), events=4000,
    ),
    "bufwriter": ContestSpec(
        "bufwriter", workers=5, locks=1,
        racy_pairs=_pairs_among_workers(2, 5), events=40_000,
    ),
    "critical": ContestSpec(
        "critical", workers=3, locks=0,
        racy_pairs=_pairs_among_workers(6, 3), main_races=2, events=55,
    ),
    "mergesort": ContestSpec(
        "mergesort", workers=4, locks=3,
        racy_pairs=_pairs_among_workers(3, 4), events=3000,
    ),
    "pingpong": ContestSpec(
        "pingpong", workers=3, locks=0,
        racy_pairs=_pairs_among_workers(5, 3), main_races=2, events=146,
    ),
}
