"""Large real-world-application-style benchmarks (Table 1, third block).

Synthetic stand-ins for derby, eclipse, ftpserver, jigsaw, lusearch and
xalan.  Three structural properties from the paper are preserved:

* eclipse, jigsaw and xalan contain races that only WCP (not HB) can see
  (the boldfaced column-6 entries);
* most races in these programs are *distant* -- the paper measures eclipse
  races 4.8-53 million events apart -- so the windowed predictor reports
  only a small fraction of them (columns 8-10); ``lusearch`` is the extreme
  case where the predictor finds none at all;
* the WCP queue fraction (column 11) stays well below a few percent.

Paper-scale event counts (1.3M-216M) are reduced to laptop-scale defaults;
use the ``scale`` parameter of :func:`repro.bench.get_benchmark` to grow
them.
"""

from __future__ import annotations

from typing import Dict

from repro.bench.synthetic import SyntheticSpec

#: Real-world-application-style benchmark specifications.
REALWORLD_SPECS: Dict[str, SyntheticSpec] = {
    # WCP 23 / HB 23, predictor up to 14 -> 14 local.
    "derby": SyntheticSpec(
        "derby", events=50_000, threads=4, locks=1112,
        hb_races=23, wcp_only_races=0, local_races=14,
    ),
    # WCP 66 / HB 64 (2 WCP-only), predictor up to 8 -> 8 local.
    "eclipse": SyntheticSpec(
        "eclipse", events=80_000, threads=14, locks=8263,
        hb_races=64, wcp_only_races=2, local_races=8, local_wcp_races=0,
    ),
    # WCP 36 / HB 36, predictor up to 12 -> 12 local.
    "ftpserver": SyntheticSpec(
        "ftpserver", events=30_000, threads=11, locks=304,
        hb_races=36, wcp_only_races=0, local_races=12,
    ),
    # WCP 14 / HB 11 (3 WCP-only), predictor up to 6 -> 6 local.
    "jigsaw": SyntheticSpec(
        "jigsaw", events=50_000, threads=13, locks=280,
        hb_races=11, wcp_only_races=3, local_races=6, local_wcp_races=0,
    ),
    # WCP 160 / HB 160, predictor finds none -> 0 local.
    "lusearch": SyntheticSpec(
        "lusearch", events=60_000, threads=7, locks=118,
        hb_races=160, wcp_only_races=0, local_races=0,
    ),
    # WCP 18 / HB 15 (3 WCP-only), predictor up to 8 -> 8 local (5 HB + 3 WCP).
    "xalan": SyntheticSpec(
        "xalan", events=60_000, threads=6, locks=2494,
        hb_races=15, wcp_only_races=3, local_races=5, local_wcp_races=3,
    ),
}
