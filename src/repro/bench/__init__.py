"""Benchmark workload generators.

The paper evaluates on 18 traces logged from Java programs (IBM Contest,
Java Grande, and large real-world applications).  Those programs and the
RVPredict logger are not available offline, so this package generates
synthetic traces with the same *structural* properties -- thread/lock
counts, seeded races that are HB-visible or only WCP-visible, and race
distances that do or do not fit inside analysis windows -- which is what
drives every qualitative result in Table 1 and Figure 7 (see DESIGN.md,
"Substitutions").

* :mod:`~repro.bench.generators` -- reusable building blocks (seeded race
  patterns, protected filler activity).
* :mod:`~repro.bench.contest` -- the nine small IBM-Contest-style programs,
  built with the simulator substrate.
* :mod:`~repro.bench.grande` -- the three Java-Grande-style medium traces.
* :mod:`~repro.bench.realworld` -- the six large application-style traces.
* :mod:`~repro.bench.lowerbound` -- the adversarial trace family from the
  linear-space lower bound (Figure 8 / Theorem 4).
* :mod:`~repro.bench.paper_figures` -- the exact hand-written traces of
  Figures 1-6.
* :mod:`~repro.bench.suite` -- the registry: :data:`BENCHMARKS`,
  :func:`get_benchmark`.
"""

from repro.bench.suite import BENCHMARKS, BenchmarkSpec, get_benchmark, benchmark_names
from repro.bench.lowerbound import lower_bound_trace
from repro.bench import paper_figures

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "get_benchmark",
    "benchmark_names",
    "lower_bound_trace",
    "paper_figures",
]
