"""The benchmark registry and the single-pass suite runner.

:data:`BENCHMARKS` maps benchmark names to :class:`BenchmarkSpec` objects
that know how to generate the trace (at a chosen scale and seed) and what
the paper reported for that benchmark (Table 1), so that the benchmark
harness and EXPERIMENTS.md can put "paper" and "measured" side by side.

:func:`run_suite` drives the selected benchmarks through the streaming
:class:`~repro.engine.RaceEngine`: each benchmark trace is iterated
exactly once no matter how many detectors are compared (the legacy
harness paid one iteration per detector).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.bench.contest import CONTEST_SPECS, ContestSpec, build_contest_trace
from repro.bench.grande import GRANDE_SPECS
from repro.bench.realworld import REALWORLD_SPECS
from repro.bench.synthetic import SyntheticSpec, build_synthetic_trace
from repro.trace.trace import Trace


class PaperNumbers:
    """The row the paper reports for a benchmark (Table 1)."""

    def __init__(
        self,
        events: float,
        threads: int,
        locks: int,
        wcp_races: int,
        hb_races: int,
        rv_1k: Optional[int],
        rv_10k: Optional[int],
        rv_max: Optional[int],
        queue_pct: float,
    ) -> None:
        self.events = events
        self.threads = threads
        self.locks = locks
        self.wcp_races = wcp_races
        self.hb_races = hb_races
        self.rv_1k = rv_1k
        self.rv_10k = rv_10k
        self.rv_max = rv_max
        self.queue_pct = queue_pct


class BenchmarkSpec:
    """A named benchmark: a trace generator plus expected numbers."""

    def __init__(
        self,
        name: str,
        category: str,
        generator: Callable[[float, int], Trace],
        expected_wcp_races: int,
        expected_hb_races: int,
        paper: PaperNumbers,
    ) -> None:
        self.name = name
        self.category = category
        self._generator = generator
        self.expected_wcp_races = expected_wcp_races
        self.expected_hb_races = expected_hb_races
        self.paper = paper

    def generate(self, scale: float = 1.0, seed: int = 0) -> Trace:
        """Generate the benchmark trace."""
        return self._generator(scale, seed)

    def __repr__(self) -> str:
        return "BenchmarkSpec(%r, category=%r, wcp=%d, hb=%d)" % (
            self.name, self.category,
            self.expected_wcp_races, self.expected_hb_races,
        )


def _contest_generator(spec: ContestSpec) -> Callable[[float, int], Trace]:
    def generate(scale: float = 1.0, seed: int = 0) -> Trace:
        return build_contest_trace(spec, scale=scale, seed=seed)
    return generate


def _synthetic_generator(spec: SyntheticSpec) -> Callable[[float, int], Trace]:
    def generate(scale: float = 1.0, seed: int = 0) -> Trace:
        return build_synthetic_trace(spec, scale=scale, seed=seed)
    return generate


#: Paper Table 1, transcribed (events are approximate: K = 1e3, M = 1e6).
_PAPER_TABLE: Dict[str, PaperNumbers] = {
    "account": PaperNumbers(130, 4, 3, 4, 4, 4, 4, 4, 0.0),
    "airline": PaperNumbers(128, 2, 0, 4, 4, 4, 4, 4, 0.0),
    "array": PaperNumbers(47, 3, 2, 0, 0, 0, 0, 0, 4.3),
    "boundedbuffer": PaperNumbers(333, 2, 2, 2, 2, 2, 2, 2, 0.0),
    "bubblesort": PaperNumbers(4_000, 10, 2, 6, 6, 6, 0, 6, 2.4),
    "bufwriter": PaperNumbers(11_700_000, 6, 1, 2, 2, 2, 2, 2, 10.0),
    "critical": PaperNumbers(55, 4, 0, 8, 8, 8, 8, 8, 0.0),
    "mergesort": PaperNumbers(3_000, 5, 3, 3, 3, 1, 2, 2, 1.3),
    "pingpong": PaperNumbers(146, 4, 0, 7, 7, 7, 7, 7, 0.0),
    "moldyn": PaperNumbers(164_000, 3, 2, 44, 44, 2, 2, 2, 0.0),
    "montecarlo": PaperNumbers(7_200_000, 3, 3, 5, 5, 1, 1, 1, 0.0),
    "raytracer": PaperNumbers(16_000, 3, 8, 3, 3, 2, 3, 3, 0.0),
    "derby": PaperNumbers(1_300_000, 4, 1112, 23, 23, 11, None, 14, 0.6),
    "eclipse": PaperNumbers(87_000_000, 14, 8263, 66, 64, 5, 0, 8, 0.4),
    "ftpserver": PaperNumbers(49_000, 11, 304, 36, 36, 10, 12, 12, 2.2),
    "jigsaw": PaperNumbers(3_000_000, 13, 280, 14, 11, 6, 6, 6, 0.0),
    "lusearch": PaperNumbers(216_000_000, 7, 118, 160, 160, 0, 0, 0, 0.0),
    "xalan": PaperNumbers(122_000_000, 6, 2494, 18, 15, 7, 8, 8, 0.1),
}


def _build_registry() -> Dict[str, BenchmarkSpec]:
    registry: Dict[str, BenchmarkSpec] = {}
    for name, spec in CONTEST_SPECS.items():
        registry[name] = BenchmarkSpec(
            name=name,
            category="contest",
            generator=_contest_generator(spec),
            expected_wcp_races=spec.races,
            expected_hb_races=spec.races,
            paper=_PAPER_TABLE[name],
        )
    for name, spec in GRANDE_SPECS.items():
        registry[name] = BenchmarkSpec(
            name=name,
            category="grande",
            generator=_synthetic_generator(spec),
            expected_wcp_races=spec.wcp_races,
            expected_hb_races=spec.hb_races,
            paper=_PAPER_TABLE[name],
        )
    for name, spec in REALWORLD_SPECS.items():
        registry[name] = BenchmarkSpec(
            name=name,
            category="realworld",
            generator=_synthetic_generator(spec),
            expected_wcp_races=spec.wcp_races,
            expected_hb_races=spec.hb_races,
            paper=_PAPER_TABLE[name],
        )
    return registry


#: All 18 Table-1 benchmarks, keyed by name.
BENCHMARKS: Dict[str, BenchmarkSpec] = _build_registry()


def benchmark_names(category: Optional[str] = None) -> List[str]:
    """Return benchmark names, optionally filtered by category."""
    return [
        name for name, spec in BENCHMARKS.items()
        if category is None or spec.category == category
    ]


def get_benchmark(name: str, scale: float = 1.0, seed: int = 0) -> Trace:
    """Generate the named benchmark trace."""
    try:
        spec = BENCHMARKS[name]
    except KeyError:
        raise ValueError(
            "unknown benchmark %r; available: %s"
            % (name, ", ".join(sorted(BENCHMARKS)))
        ) from None
    return spec.generate(scale=scale, seed=seed)


def run_suite(
    names: Optional[Sequence[str]] = None,
    detectors: Union[str, Sequence[str]] = ("wcp", "hb"),
    scale: float = 0.05,
    seed: int = 0,
):
    """Run the Table-1 comparison over the selected benchmarks.

    Each benchmark trace is generated once and analysed by every detector
    in a **single** engine pass.  ``detectors`` may be a comma-separated
    string or a sequence of names.  Returns ``(rows, table)`` exactly like
    :func:`repro.analysis.compare.run_table`.
    """
    # Imported here: repro.analysis.compare pulls in the engine, and the
    # benchmark registry must stay importable on its own.
    from repro.analysis.compare import run_table
    from repro.api import make_detector

    if isinstance(detectors, str):
        detectors = [name.strip() for name in detectors.split(",") if name.strip()]
    detector_names = list(detectors)
    if not detector_names:
        raise ValueError("run_suite requires at least one detector")
    selected = list(names) if names is not None else sorted(BENCHMARKS)
    traces = {
        name: get_benchmark(name, scale=scale, seed=seed) for name in selected
    }
    return run_table(
        traces, lambda: [make_detector(name) for name in detector_names]
    )
