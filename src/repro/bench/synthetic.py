"""The generic synthetic-benchmark generator behind Table 1's medium and
large workloads.

Each benchmark is described by a :class:`SyntheticSpec` giving the scale
(events, threads, locks) and the seeded races:

* ``hb_races`` races visible to every partial order (two unsynchronised
  writes);
* ``wcp_only_races`` races visible to WCP/CP-style predictors but hidden
  from HB by a lock hand-off (the Figure 2b pattern);
* ``local_races`` of those are *local* (both accesses close together, so a
  windowed tool can see them); the rest are *distant* (first access near
  the start of the trace, second near the end -- invisible to any windowed
  analysis with a window smaller than the gap).

Seeded patterns are arranged so they can never mask one another:

* cross-thread happens-before edges are only ever created by the
  WCP-pattern's lock hand-off, and those always go from a lower-indexed
  thread to a higher-indexed one;
* HB-race patterns therefore always write first from a *higher*-indexed
  thread and second from a *lower*-indexed one;
* filler activity uses per-thread private locks and variables (no races,
  no cross-thread edges).

This makes the distinct-race counts of the generated traces exactly equal
to the spec, which the test suite asserts.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.bench.generators import (
    FillerMill,
    add_hb_race,
    add_local_activity,
    add_wcp_only_race,
)
from repro.trace.event import Event, EventType
from repro.trace.trace import Trace


class SyntheticSpec:
    """Scale and seeded-race description of one synthetic benchmark."""

    def __init__(
        self,
        name: str,
        events: int,
        threads: int,
        locks: int,
        hb_races: int,
        wcp_only_races: int = 0,
        local_races: int = 0,
        local_wcp_races: int = 0,
    ) -> None:
        if threads < 2:
            raise ValueError("need at least two threads to race")
        self.name = name
        self.events = events
        self.threads = threads
        self.locks = locks
        self.hb_races = hb_races
        self.wcp_only_races = wcp_only_races
        self.local_races = min(local_races, hb_races)
        self.local_wcp_races = min(local_wcp_races, wcp_only_races)

    @property
    def wcp_races(self) -> int:
        """Total distinct races WCP should report (HB-visible + WCP-only)."""
        return self.hb_races + self.wcp_only_races

    def __repr__(self) -> str:
        return "SyntheticSpec(%r, events=%d, hb=%d, wcp_only=%d)" % (
            self.name, self.events, self.hb_races, self.wcp_only_races
        )


def build_synthetic_trace(
    spec: SyntheticSpec, scale: float = 1.0, seed: int = 0
) -> Trace:
    """Build the trace for ``spec`` at the given ``scale`` (event multiplier)."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = random.Random(seed)
    target_events = max(200, int(spec.events * scale))

    threads = ["t%d" % index for index in range(spec.threads)]
    # Every WCP-only pattern gets a private hand-off lock, so patterns can
    # never order (and thus mask) one another.
    filler_lock_count = max(0, spec.locks - spec.wcp_only_races)
    filler_locks = ["lock%d" % index for index in range(filler_lock_count)]

    events: List[Event] = []
    if spec.locks > 0:
        filler = FillerMill(events, threads, filler_locks, rng)

        def fill(count: int) -> None:
            filler.emit_events(count)
    else:
        # Lock-free benchmarks (airline/critical/pingpong-style): pad with
        # thread-local accesses instead of critical sections.
        local_counter = [0]

        def fill(count: int) -> None:
            emitted = 0
            while emitted < count:
                thread = threads[local_counter[0] % len(threads)]
                add_local_activity(
                    events, thread, "local_%s" % thread,
                    "pad%d" % local_counter[0], accesses=2,
                )
                local_counter[0] += 1
                emitted += 2

    # Budget the filler: roughly 12 events per seeded race pattern, the rest
    # is split between the head gap (between distant first and second
    # halves) and the tail.
    distant_hb = spec.hb_races - spec.local_races
    distant_wcp = spec.wcp_only_races - spec.local_wcp_races
    seeded_events = 2 * spec.hb_races + 8 * spec.wcp_only_races
    filler_budget = max(0, target_events - seeded_events)
    head_fill = filler_budget // 10
    gap_fill = (filler_budget * 7) // 10
    tail_fill = filler_budget - head_fill - gap_fill

    fill(head_fill)

    # --- Distant races: first halves ---------------------------------- #
    # WCP-only patterns use thread pairs (t0, tj) so every cross-thread HB
    # edge they introduce goes "upwards" (index 0 -> j).  Only the first
    # half of each pattern is emitted here; the matching second halves are
    # emitted after the gap, in the same order, which keeps the patterns
    # from ordering one another (see the module docstring).
    distant_wcp_specs = []
    for index in range(distant_wcp):
        partner = threads[1 + index % (spec.threads - 1)]
        lock = "rlock_d%d" % index
        prefix = "wcp_distant%d" % index
        distant_wcp_first_half(events, threads[0], lock, prefix)
        distant_wcp_specs.append((partner, lock, prefix))

    # HB distant races go "downwards" (higher index writes first) so the
    # upward WCP edges cannot order them.
    distant_hb_specs = []
    for index in range(distant_hb):
        first = threads[1 + index % (spec.threads - 1)]
        second = threads[0]
        prefix = "hb_distant%d" % index
        distant_hb_specs.append((first, second, prefix))
        events.append(Event(
            len(events), first, EventType.WRITE, "%s_v" % prefix,
            "%s.first" % prefix,
        ))

    # --- The gap ------------------------------------------------------- #
    fill(gap_fill)

    # --- Distant races: second halves ---------------------------------- #
    for partner, lock, prefix in distant_wcp_specs:
        events.append(Event(
            len(events), partner, EventType.ACQUIRE, lock, "%s.acq2" % prefix))
        events.append(Event(
            len(events), partner, EventType.READ, "%s_y" % prefix, "%s.ry" % prefix))
        events.append(Event(
            len(events), partner, EventType.READ, "%s_x" % prefix, "%s.rx" % prefix))
        events.append(Event(
            len(events), partner, EventType.RELEASE, lock, "%s.rel2" % prefix))
    for first, second, prefix in distant_hb_specs:
        events.append(Event(
            len(events), second, EventType.WRITE, "%s_v" % prefix,
            "%s.second" % prefix,
        ))

    # --- Local races ---------------------------------------------------- #
    for index in range(spec.local_wcp_races):
        partner = threads[1 + index % (spec.threads - 1)]
        lock = "rlock_l%d" % index
        prefix = "wcp_local%d" % index
        add_wcp_only_race(events, threads[0], partner, lock, prefix, prefix)
    for index in range(spec.local_races):
        first = threads[1 + index % (spec.threads - 1)]
        second = threads[0]
        prefix = "hb_local%d" % index
        add_hb_race(events, first, second, "%s_v" % prefix, prefix)

    # --- Tail filler ----------------------------------------------------- #
    fill(tail_fill)

    return Trace(events, name=spec.name)


def distant_wcp_first_half(
    events: List[Event], first_thread: str, lock: str, prefix: str
) -> None:
    """Emit only the first half of the Figure-2b pattern (used for distant races)."""
    events.append(Event(len(events), first_thread, EventType.WRITE,
                        "%s_y" % prefix, "%s.wy" % prefix))
    events.append(Event(len(events), first_thread, EventType.ACQUIRE, lock,
                        "%s.acq1" % prefix))
    events.append(Event(len(events), first_thread, EventType.WRITE,
                        "%s_x" % prefix, "%s.wx" % prefix))
    events.append(Event(len(events), first_thread, EventType.RELEASE, lock,
                        "%s.rel1" % prefix))
