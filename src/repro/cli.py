"""Command-line interface.

Eight subcommands::

    repro-race analyze TRACE_FILE [--detector wcp,hb] [--stream] [--window N]
                       [--first-race] [--max-events N] [--json OUT]
                       [--checkpoint DIR [--checkpoint-every N] | --resume DIR]
                       [--auto-resume N]
    repro-race compare TRACE_FILE [--detectors wcp,hb] [--stream]
    repro-race serve (--port N | --socket PATH) [--detector wcp] [--once]
                     [--checkpoint-dir DIR] [--handshake-timeout S]
    repro-race push TRACE_FILE (--port N | --socket PATH) [--stream-id ID]
                    [--retries N]
    repro-race bench [--benchmark NAME ...] [--scale 0.1] [--detectors wcp,hb]
    repro-race generate BENCHMARK -o trace.std [--scale 0.1] [--seed 0]
    repro-race stats TRACE_FILE
    repro-race witness TRACE_FILE [--detector wcp] [--max-states N]

``analyze --auto-resume N`` executes the run in a supervised child
process that survives up to N coordinator crashes by resuming from the
newest checkpoint; ``push`` streams a trace file to a ``serve`` instance
with automatic retry, backoff and mid-stream reconnect.
``analyze`` runs one or more detectors (comma-separated) on a logged trace
file (STD or CSV format) in a single engine pass; with ``--stream`` the
file is parsed lazily and analysed without ever materialising a full
in-memory trace (trace well-formedness is still checked, by the O(1)
online validator -- ``--no-validate`` opts out).  ``--checkpoint DIR``
persists detector-state snapshots at a fixed event cadence and
``--resume DIR`` continues a crashed pass from the newest one with
reports identical to an uninterrupted run (works sharded, too).  ``compare`` prints a
side-by-side single-pass comparison table for one trace.  ``serve``
listens on a TCP port or unix socket for *pushed* STD event streams and
analyses each connection online with the asynchronous engine.  ``bench``
regenerates Table-1-style rows on the synthetic benchmark suite,
``generate`` writes a benchmark trace to disk for use with other tools,
``stats`` prints the trace's descriptive columns, and ``witness``
searches for a correct-reordering witness of the first detected race
(turning a warning into a concrete alternative schedule).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.analysis.compare import run_table
from repro.analysis.export import save_report
from repro.analysis.metrics import event_census, trace_summary
from repro.analysis.tables import format_table
from repro.analysis.windowing import WindowedDetector
from repro.api import (
    available_detectors,
    make_detector,
    resume_engine,
    run_engine,
)
from repro.bench.suite import BENCHMARKS, get_benchmark
from repro.engine import (
    CoordinatorFailure,
    EngineConfig,
    FileSource,
    RunSupervisor,
    ValidatingSource,
    WorkerFailure,
)
from repro.reordering.witness import find_race_witness
from repro.trace.parsers import FORMAT_NAMES, load_trace
from repro.trace.writers import dump_trace


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-race",
        description="Dynamic race prediction in linear time (WCP) -- reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="analyze a trace file")
    analyze.add_argument("trace", help="path to a trace file (see --format)")
    _add_format_argument(analyze)
    analyze.add_argument(
        "--detector", default=None, metavar="NAMES",
        help="comma-separated detector list run in one pass "
             "(default: wcp, or the checkpointed selection under --resume; "
             "available: %s)" % ", ".join(available_detectors()),
    )
    persistence = analyze.add_mutually_exclusive_group()
    persistence.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="periodically snapshot detector state into DIR (atomic, "
             "offset-keyed files); a crashed run continues from the newest "
             "checkpoint with --resume DIR.  All selected detectors must "
             "support snapshots (wcp, hb, fasttrack)",
    )
    persistence.add_argument(
        "--resume", default=None, metavar="DIR",
        help="resume from the newest checkpoint in DIR: the trace is "
             "replayed from the checkpointed offset, detectors (rebuilt "
             "from the checkpoint unless --detector is given) are "
             "restored, and checkpointing continues into DIR at the "
             "original cadence; reports equal the uninterrupted run",
    )
    analyze.add_argument(
        "--checkpoint-every", type=_positive_int, default=10_000, metavar="N",
        help="events between checkpoints under --checkpoint (default 10000)",
    )
    analyze.add_argument(
        "--auto-resume", type=_nonnegative_int, default=None, metavar="N",
        help="run the analysis in a supervised child process that "
             "survives up to N coordinator crashes (SIGKILL, OOM): each "
             "crash resumes from the newest checkpoint with reports "
             "identical to an uninterrupted run.  Checkpoints go to "
             "--checkpoint/--resume DIR when given, else to a private "
             "temporary directory",
    )
    analyze.add_argument(
        "--stream", action="store_true",
        help="parse the file lazily and analyse it without materialising "
             "a full in-memory trace (constant memory; well-formedness is "
             "checked online in O(1) per event unless --no-validate; "
             "WCP additionally prunes its Rule (b) logs with the "
             "thread-quiescence heuristic -- see --no-stream-reclaim)",
    )
    analyze.add_argument(
        "--no-stream-reclaim", action="store_true",
        help="under --stream, keep WCP's Rule (b) logs in full instead of "
             "pruning them heuristically (the heuristic recovers evicted "
             "entries through summaries, but on adversarial streams a "
             "late lock adopter may still see extra races; this flag "
             "restores exact verdicts at worst-case linear memory)",
    )
    analyze.add_argument(
        "--window", type=int, default=None,
        help="optionally window the detector(s) to this many events",
    )
    _add_shard_arguments(analyze)
    analyze.add_argument(
        "--first-race", action="store_true",
        help="stop the pass as soon as any detector reports a race",
    )
    analyze.add_argument(
        "--max-events", type=int, default=None, metavar="N",
        help="stop the pass after N events",
    )
    analyze.add_argument(
        "--no-validate", action="store_true",
        help="skip trace well-formedness validation",
    )
    analyze.add_argument(
        "--json", dest="json_out", default=None, metavar="PATH",
        help="additionally write the report as JSON (or CSV if PATH ends in "
             ".csv); with several detectors the detector name is appended",
    )

    compare = subparsers.add_parser(
        "compare", help="run several detectors over one trace in a single pass"
    )
    compare.add_argument("trace", help="path to a trace file (see --format)")
    _add_format_argument(compare)
    compare.add_argument(
        "--detectors", default="wcp,hb", metavar="NAMES",
        help="comma-separated detector names (default: wcp,hb)",
    )
    compare.add_argument(
        "--stream", action="store_true",
        help="parse the file lazily (constant memory; well-formedness is "
             "checked online unless --no-validate)",
    )
    compare.add_argument(
        "--no-stream-reclaim", action="store_true",
        help="under --stream, keep WCP's Rule (b) logs in full instead of "
             "pruning them heuristically",
    )
    compare.add_argument(
        "--no-validate", action="store_true",
        help="skip trace well-formedness validation",
    )
    _add_shard_arguments(compare)

    serve = subparsers.add_parser(
        "serve",
        help="listen on a socket for pushed STD event streams and analyse "
             "each connection online (asynchronous engine)",
    )
    listen = serve.add_mutually_exclusive_group(required=True)
    listen.add_argument(
        "--port", type=int, default=None, metavar="N",
        help="listen on TCP port N (0 picks a free port; the bound "
             "address is printed on startup)",
    )
    listen.add_argument(
        "--socket", dest="unix_socket", default=None, metavar="PATH",
        help="listen on a unix domain socket at PATH",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address for --port (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--detector", default="wcp", metavar="NAMES",
        help="comma-separated detector list run per connection "
             "(default: wcp)",
    )
    serve.add_argument(
        "--no-validate", action="store_true",
        help="skip the online lock-semantics/well-nestedness validation "
             "of pushed streams",
    )
    serve.add_argument(
        "--no-stream-reclaim", action="store_true",
        help="keep WCP's Rule (b) logs in full instead of pruning them "
             "with the thread-quiescence heuristic",
    )
    serve.add_argument(
        "--max-events", type=int, default=None, metavar="N",
        help="stop each connection's pass after N events",
    )
    serve.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="per-connection crash recovery: clients that send "
             "'# stream-id: <id>' as their first line get detector state "
             "checkpointed under DIR/<id> and receive a 'resume <offset>' "
             "response telling them where to replay from after a server "
             "restart",
    )
    serve.add_argument(
        "--checkpoint-every", type=_positive_int, default=10_000, metavar="N",
        help="events between per-connection checkpoints (default 10000)",
    )
    serve.add_argument(
        "--handshake-timeout", type=float, default=30.0, metavar="SECONDS",
        help="drop a connection that has not sent its first line within "
             "SECONDS so silent peers cannot pin admission slots (counted "
             "as handshake_timeout in /stats; 0 disables; default 30)",
    )
    serve.add_argument(
        "--once", action="store_true",
        help="handle exactly one connection, then exit with analyze-style "
             "status (1 when races were found, 2 on a rejected stream)",
    )
    serve.add_argument(
        "--max-connections", type=_positive_int, default=None, metavar="N",
        help="global ceiling on concurrent connections; extras are shed "
             "with 'error Overloaded: ...' instead of queueing",
    )
    serve.add_argument(
        "--max-streams-per-tenant", type=_positive_int, default=None,
        metavar="N",
        help="per-tenant ceiling on concurrent streams (tenant = the part "
             "of the stream id before the first '.'; anonymous "
             "connections share one tenant)",
    )
    serve.add_argument(
        "--max-events-per-sec", type=float, default=None, metavar="RATE",
        help="per-tenant token-bucket event rate shared across the "
             "tenant's streams; small deficits throttle (backpressure), "
             "large ones shed with a retry-after",
    )
    serve.add_argument(
        "--burst-events", type=float, default=None, metavar="N",
        help="token-bucket burst capacity for --max-events-per-sec "
             "(default: 2x the rate)",
    )
    serve.add_argument(
        "--throttle-budget", type=float, default=2.0, metavar="SECONDS",
        help="largest per-event rate deficit absorbed by sleeping (TCP "
             "backpressure) before a stream is shed instead "
             "(default 2.0)",
    )
    serve.add_argument(
        "--max-detector-bytes", type=_positive_int, default=None,
        metavar="N",
        help="shed a stream whose serialized detector state grows past N "
             "bytes (estimated from checkpoint blobs)",
    )
    serve.add_argument(
        "--idle-evict-after", type=float, default=None, metavar="SECONDS",
        help="checkpoint a stream idle for SECONDS to disk and release "
             "its detector memory; the next event restores it "
             "transparently (requires --checkpoint-dir and a "
             "'# stream-id:' handshake)",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="N",
        help="additionally serve the metrics JSON over HTTP on this port "
             "(0 picks a free port); the in-band '/stats' first-line "
             "query works regardless",
    )
    serve.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        choices=("debug", "info", "warning", "error"),
        help="enable structured one-line-per-event logging "
             "(accept/complete/shed/evict/restore/drain) at LEVEL on "
             "stderr",
    )
    # serve is inherently streaming: detector construction follows the
    # --stream conventions (WCP log reclamation unless opted out).
    serve.set_defaults(stream=True)

    push = subparsers.add_parser(
        "push",
        help="stream a trace file to a serve instance with automatic "
             "retry, backoff and mid-stream reconnect",
    )
    push.add_argument("trace", help="path to a .std trace file to stream")
    push_target = push.add_mutually_exclusive_group(required=True)
    push_target.add_argument(
        "--port", type=int, default=None, metavar="N",
        help="connect to TCP port N",
    )
    push_target.add_argument(
        "--socket", dest="unix_socket", default=None, metavar="PATH",
        help="connect to a unix domain socket at PATH",
    )
    push.add_argument(
        "--host", default="127.0.0.1",
        help="server address for --port (default: 127.0.0.1)",
    )
    push.add_argument(
        "--stream-id", default=None, metavar="ID",
        help="stable stream identity: against a server running with "
             "--checkpoint-dir, a severed connection reconnects and "
             "replays exactly from the server's 'resume <offset>' reply "
             "instead of restarting the stream",
    )
    push.add_argument(
        "--retries", type=_nonnegative_int, default=5, metavar="N",
        help="reconnect attempts after the first failure (default 5); "
             "Overloaded replies honor the server's retry-after hint",
    )
    push.add_argument(
        "--backoff", type=float, default=0.1, metavar="SECONDS",
        help="base of the exponential reconnect backoff (default 0.1)",
    )
    push.add_argument(
        "--connect-timeout", type=float, default=5.0, metavar="SECONDS",
        help="per-attempt connection timeout (default 5)",
    )
    push.add_argument(
        "--verbose", "-v", action="store_true",
        help="print retry/reconnect counters to stderr after the push",
    )

    bench = subparsers.add_parser("bench", help="run the Table 1 benchmark suite")
    bench.add_argument(
        "--benchmark", action="append", default=None,
        help="benchmark name (repeatable; default: all)",
    )
    bench.add_argument("--scale", type=float, default=0.05,
                       help="event-count scale factor (default 0.05)")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--detectors", default="wcp,hb",
        help="comma-separated detector names (default: wcp,hb)",
    )

    generate = subparsers.add_parser("generate", help="write a benchmark trace to disk")
    generate.add_argument("benchmark", choices=sorted(BENCHMARKS))
    generate.add_argument("-o", "--output", required=True, help="output path (.std or .csv)")
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("--seed", type=int, default=0)

    stats = subparsers.add_parser("stats", help="print trace summary statistics")
    stats.add_argument("trace", help="path to a trace file (see --format)")
    _add_format_argument(stats)
    stats.add_argument(
        "--no-validate", action="store_true",
        help="skip trace well-formedness validation",
    )
    stats.add_argument(
        "--detectors", default=None, metavar="NAMES",
        help="additionally run these comma-separated detectors over the "
             "trace in one engine pass and print the per-detector cost "
             "accounting table (races, attributed time, events/s, "
             "serialized state size)",
    )
    stats.add_argument(
        "--timing", action="store_true",
        help="report the parse-vs-detect wall-clock split with events/sec "
             "per phase (detect uses --detectors, defaulting to wcp), so "
             "decode-bound vs detector-bound workloads are diagnosable "
             "without a profiler",
    )

    witness = subparsers.add_parser(
        "witness", help="search for a reordering witnessing the first race"
    )
    witness.add_argument("trace", help="path to a .std/.txt/.csv trace file")
    witness.add_argument(
        "--detector", default="wcp", choices=available_detectors(),
        help="detector used to pick the race to witness (default: wcp)",
    )
    witness.add_argument(
        "--max-states", type=int, default=200_000,
        help="bound on interleavings explored by the search",
    )

    return parser


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(
            "must be a positive integer, got %s" % value
        )
    return parsed


def _nonnegative_int(value: str) -> int:
    parsed = int(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError(
            "must be >= 0, got %s" % value
        )
    return parsed


def _add_format_argument(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--format", default=None, choices=FORMAT_NAMES,
        help="trace file format: the native std/csv formats or an ingest "
             "adapter (mtrace kernel lock logs, tsan-like logs); default "
             "dispatches on the file extension (.csv/.mtrace/.tsan, "
             "anything else is std)",
    )


def _add_shard_arguments(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--shards", type=_positive_int, default=1, metavar="N",
        help="split the pass across N worker engines (variables are "
             "partitioned, the synchronization skeleton is replicated); "
             "1 keeps the unsharded engine with byte-identical output",
    )
    subparser.add_argument(
        "--shard-mode", default="process",
        choices=("process", "ring", "thread", "serial"),
        help="shard transport: separate processes (multi-core, default), "
             "processes fed through zero-copy shared-memory rings (ring), "
             "threads, or inline serial workers (deterministic debugging)",
    )
    subparser.add_argument(
        "--shard-policy", default="hash", choices=("hash", "rr"),
        help="variable partition policy: stable hashing (default) or "
             "round-robin by first appearance",
    )
    subparser.add_argument(
        "--shard-retries", type=_nonnegative_int, default=2, metavar="N",
        help="worker restarts allowed per shard before the run fails; on "
             "a death the coordinator restores the shard from its newest "
             "periodic snapshot and replays the buffered batches, so the "
             "report is identical to an uninterrupted run (default 2; 0 "
             "disables failover)",
    )
    subparser.add_argument(
        "--shard-heartbeat", type=float, default=30.0, metavar="SECONDS",
        help="liveness timeout: a shard worker with batches outstanding "
             "and no acknowledgement progress for this long is declared "
             "dead and failed over (default 30)",
    )
    subparser.add_argument(
        "--fail-fast", action="store_true",
        help="fail the run on the first shard worker death (one "
             "actionable error) instead of restoring and replaying",
    )


def _split_detector_names(spec: str) -> List[str]:
    names = [name.strip() for name in spec.split(",") if name.strip()]
    if not names:
        raise ValueError("no detector names given")
    return names


def _make_detectors(names: List[str], args: argparse.Namespace) -> List:
    """Instantiate detectors; under --stream WCP gets log reclamation
    (unless --no-stream-reclaim restores exact worst-case-memory mode)."""
    reclaim = args.stream and not getattr(args, "no_stream_reclaim", False)
    detectors = []
    for name in names:
        if reclaim and name.lower() == "wcp":
            detectors.append(make_detector(name, stream_reclaim=True))
        else:
            detectors.append(make_detector(name))
    return detectors


def _make_engine_config(args: argparse.Namespace) -> EngineConfig:
    """Build an engine configuration carrying the shard selection."""
    config = EngineConfig()
    shards = getattr(args, "shards", 1)
    if shards > 1:
        config.with_shards(
            shards, mode=args.shard_mode, policy=args.shard_policy
        )
        config.with_shard_supervision(
            retries=getattr(args, "shard_retries", None),
            heartbeat_s=getattr(args, "shard_heartbeat", None),
            fail_fast=getattr(args, "fail_fast", False) or None,
        )
    return config


def _make_source(args: argparse.Namespace):
    """Build the analyze/compare event source from the CLI arguments.

    Both paths validate by default: batch loading through
    ``Trace(validate=True)``, streaming through the O(1)-per-event
    :class:`~repro.engine.ValidatingSource` (identical error classes and
    messages).  ``--no-validate`` disables either.
    """
    validate = not getattr(args, "no_validate", False)
    format = getattr(args, "format", None)
    if args.stream:
        source = FileSource(args.trace, format=format)
        return ValidatingSource(source) if validate else source
    return load_trace(args.trace, validate=validate, format=format)


def _print_resume_provenance(directory: str) -> None:
    """One stderr line naming what --resume actually restored.

    Best-effort: an unreadable directory stays silent here and surfaces
    through ``resume_engine``'s own actionable error instead.
    """
    from repro.engine.checkpoint import Checkpointer

    checkpointer = Checkpointer(directory)
    try:
        loaded = checkpointer.load_resumable()
    except ValueError:
        return
    path = os.path.join(
        str(directory), Checkpointer._PATTERN % loaded.events
    )
    stamps = ", ".join(
        "%s[snapshot v%s]" % (
            stamp.get("name", "?"), stamp.get("snapshot_version", "?")
        )
        for stamp in loaded.stamps or []
    ) or "from checkpoint"
    print(
        "resuming from %s: event offset %d, detectors %s"
        % (path, loaded.events, stamps),
        file=sys.stderr,
    )


def _run_supervised(args: argparse.Namespace, config: EngineConfig):
    """Run analyze under the crash-surviving coordinator supervisor."""
    supervisor = RunSupervisor(
        lambda: _make_source(args),
        config=config,
        checkpoint_dir=args.checkpoint or args.resume,
        checkpoint_every=args.checkpoint_every,
        retries=args.auto_resume,
    )
    result = supervisor.run()
    if supervisor.restarts:
        print(
            "auto-resume: engine process restarted %d time(s); the run "
            "completed from checkpoints in %s"
            % (supervisor.restarts, supervisor.checkpoint_dir),
            file=sys.stderr,
        )
    return result


def _cmd_analyze(args: argparse.Namespace) -> int:
    detectors = None
    try:
        if args.detector is not None or args.resume is None:
            names = _split_detector_names(args.detector or "wcp")
            detectors = _make_detectors(names, args)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.window:
        if args.shards > 1:
            print("--window cannot be combined with --shards (windowed "
                  "detectors are not shardable)", file=sys.stderr)
            return 2
        if args.checkpoint or args.resume or args.auto_resume is not None:
            print("--window cannot be combined with --checkpoint/--resume/"
                  "--auto-resume (windowed detectors do not support state "
                  "snapshots)",
                  file=sys.stderr)
            return 2
        detectors = [WindowedDetector(inner, args.window) for inner in detectors]

    config = _make_engine_config(args)
    if detectors is not None:
        config.with_detectors(*detectors)
    if args.first_race:
        config.stop_on_first_race()
    if args.max_events:
        config.stop_after_events(args.max_events)
    if args.checkpoint:
        config.with_checkpoints(args.checkpoint, every=args.checkpoint_every)

    try:
        if args.auto_resume is not None:
            result = _run_supervised(args, config)
        elif args.resume:
            _print_resume_provenance(args.resume)
            result = resume_engine(
                _make_source(args), args.resume, config=config
            )
        else:
            result = run_engine(_make_source(args), config=config)
    except (ValueError, WorkerFailure, CoordinatorFailure) as error:
        print(str(error), file=sys.stderr)
        return 2
    for position, report in enumerate(result.values()):
        if position:
            print()
        print(report.summary())
    if result.stopped_early():
        print("(pass stopped early after %d event(s): %s)"
              % (result.events, result.stop_reason))
    if args.json_out:
        for key, report in result.items():
            target = args.json_out
            if len(result) > 1:
                # Suffix the (engine-disambiguated) detector key so that
                # duplicate detectors cannot overwrite each other's file.
                stem, extension = os.path.splitext(target)
                label = (
                    key.lower()
                    .replace("[", "_").replace("]", "").replace("#", "_")
                )
                target = "%s.%s%s" % (stem, label, extension)
            path = save_report(report, target)
            print("report written to %s" % path)
    return 1 if result.has_race() else 0


def _cmd_compare(args: argparse.Namespace) -> int:
    try:
        names = _split_detector_names(args.detectors)
        detectors = _make_detectors(names, args)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    try:
        result = run_engine(
            _make_source(args),
            detectors=detectors,
            config=_make_engine_config(args),
        )
    except (ValueError, WorkerFailure) as error:
        print(str(error), file=sys.stderr)
        return 2
    headers = ["detector", "races", "raw races", "time(s)", "events/s"]
    rows = []
    for name, report in result.items():
        rows.append([
            name,
            report.count(),
            report.raw_race_count,
            "%.3f" % float(report.stats.get("time_s", 0.0)),
            "%.0f" % float(report.stats.get("events_per_s", 0.0)),
        ])
    print("%s: %d event(s) in one pass" % (result.source_name, result.events))
    print(format_table(headers, rows))
    if getattr(result, "shards", 1) > 1:
        print("%d shard(s) [%s]: events per shard %s, replication x%.2f"
              % (result.shards, result.mode, result.shard_events,
                 result.replication_factor()))
        supervision = getattr(result, "supervision", None) or {}
        if supervision.get("worker_restarts"):
            print("supervision: %d worker restart(s) %r recovered with an "
                  "identical report"
                  % (supervision["worker_restarts"],
                     supervision.get("restarts_by_shard", {})))
    return 1 if result.has_race() else 0


def _cmd_stats(args: argparse.Namespace) -> int:
    # The shared load path: stats validates by default exactly like
    # analyze/compare, so a malformed trace errors consistently across
    # subcommands instead of being silently summarised.
    parse_started = time.perf_counter()
    try:
        trace = load_trace(
            args.trace,
            validate=not args.no_validate,
            format=getattr(args, "format", None),
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    parse_s = time.perf_counter() - parse_started
    for key, value in sorted(trace_summary(trace).items()):
        print("%-10s %d" % (key, value))
    census = event_census(trace)
    if census:
        print()
        print("event census:")
        for token, count in sorted(census.items()):
            print("  %-10s %d" % (token, count))
    result = None
    detectors = None
    if args.detectors or args.timing:
        try:
            # --timing without an explicit selection still needs a detect
            # phase to split against; WCP is the paper's primary detector.
            names = _split_detector_names(args.detectors or "wcp")
            detectors = [make_detector(name) for name in names]
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        # Force per-event attribution even for a single detector so the
        # table's time column is the detector's own cost, not the pass's.
        config = EngineConfig().with_cost_accounting(True)
        result = run_engine(trace, detectors=detectors, config=config)
    if args.detectors:
        headers = ["detector", "races", "raw", "time(s)", "events/s",
                   "state(B)"]
        rows = []
        for (name, report), detector in zip(result.items(), detectors):
            state_bytes = (
                "%d" % len(detector.state_snapshot())
                if detector.supports_snapshot else "-"
            )
            rows.append([
                name,
                report.count(),
                report.raw_race_count,
                "%.3f" % float(report.stats.get("time_s", 0.0)),
                "%.0f" % float(report.stats.get("events_per_s", 0.0)),
                state_bytes,
            ])
        print()
        print("per-detector cost over %d event(s), one pass:" % result.events)
        print(format_table(headers, rows))
    if args.timing:
        # The parse phase covers decode + interning (+ validation unless
        # --no-validate); the detect phase is the engine pass above.
        events = result.events
        detect_s = result.elapsed_s
        total_s = parse_s + detect_s

        def rate(seconds: float) -> str:
            return "%.0f" % (events / seconds) if seconds > 0 else "-"

        def share(seconds: float) -> str:
            return "%.1f%%" % (100.0 * seconds / total_s) if total_s > 0 else "-"

        print()
        print("phase timing over %d event(s)%s:" % (
            events,
            " (validation skipped)" if args.no_validate else "",
        ))
        print(format_table(
            ["phase", "time(s)", "events/s", "share"],
            [
                ["parse", "%.3f" % parse_s, rate(parse_s), share(parse_s)],
                ["detect [%s]" % ",".join(d.name for d in detectors),
                 "%.3f" % detect_s, rate(detect_s), share(detect_s)],
                ["total", "%.3f" % total_s, rate(total_s), "100.0%"],
            ],
        ))
    return 0


def _cmd_witness(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    report = make_detector(args.detector).run(trace)
    if not report.has_race():
        print("no %s race found; nothing to witness" % args.detector)
        return 0
    pair = report.pairs()[0]
    print("searching witness for %s" % pair)
    result = find_race_witness(
        trace, pair.first_event, pair.second_event, max_states=args.max_states
    )
    if result.found:
        print("witness found (%d events, %d states explored):" % (
            len(result.schedule or []), result.states_explored
        ))
        for event in result.schedule or []:
            print("  %s" % (event,))
        return 1
    if result.exhausted:
        print("search budget exhausted (%d states) -- inconclusive" %
              result.states_explored)
        return 2
    print("no correct reordering realises this pair as an adjacent race "
          "(it may only be realisable as a deadlock)")
    return 0


def _configure_serve_logging(level_name: str) -> None:
    """Route the serve tier's structured event log to stderr at LEVEL."""
    import logging

    logger = logging.getLogger("repro.serve")
    logger.setLevel(getattr(logging, level_name.upper()))
    if not logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)s %(name)s %(message)s"
        ))
        logger.addHandler(handler)
    logger.propagate = False


def _make_serve_server(args: argparse.Namespace, on_session_end=None):
    """Build the (unstarted) :class:`~repro.serve.RaceServer` from flags."""
    from repro.serve import QuotaManager, RaceServer, ServeSettings, TenantQuota

    names = _split_detector_names(args.detector)

    def factory():
        # Fresh detector instances per connection: streams are
        # independent passes, state never leaks between clients.
        return _make_detectors(names, args)

    config = EngineConfig()
    if args.max_events:
        config.stop_after_events(args.max_events)
    if args.checkpoint_dir:
        config.checkpoint_every = args.checkpoint_every
    quotas = QuotaManager(TenantQuota(
        max_streams=args.max_streams_per_tenant,
        events_per_sec=args.max_events_per_sec,
        burst_events=args.burst_events,
        max_detector_bytes=args.max_detector_bytes,
    ), throttle_budget_s=args.throttle_budget)
    settings = ServeSettings(
        host=args.host,
        port=args.port,
        socket_path=args.unix_socket,
        max_connections=args.max_connections,
        quotas=quotas,
        checkpoint_dir=args.checkpoint_dir,
        idle_evict_after_s=args.idle_evict_after,
        metrics_port=args.metrics_port,
        install_signal_handlers=True,
        handshake_timeout_s=(
            args.handshake_timeout if args.handshake_timeout > 0 else None
        ),
    )
    return RaceServer(
        factory, config=config, settings=settings,
        validate=not args.no_validate, on_session_end=on_session_end,
    )


async def _serve_async(args: argparse.Namespace, ready=None) -> int:
    """The serve event loop: one governed engine pass per connection.

    ``ready`` (tests) is called with the listening asyncio server once
    the socket is bound.  With ``--once`` the loop exits after the first
    connection and the exit status follows analyze's convention; without
    it the server runs until interrupted or drained (SIGTERM: stop
    accepting, checkpoint live sessions, reply ``resume <offset>``).
    """
    import asyncio

    if args.log_level:
        _configure_serve_logging(args.log_level)
    outcomes: List = []
    done = asyncio.Event()

    def on_session_end(session, result) -> None:
        label = "client-%d" % session.session_id
        if session.state == "draining":
            print("%s: drained at event %d" % (label, session.events),
                  file=sys.stderr)
        elif result is None:
            print("%s: stream rejected (malformed or interrupted)" % label,
                  file=sys.stderr)
        else:
            print(result.summary(), flush=True)
        outcomes.append(result)
        if args.once:
            done.set()

    server = await _make_serve_server(args, on_session_end).start()
    print("serving on %s" % server.where, flush=True)
    if server.metrics_address is not None:
        print("metrics on %s:%d" % server.metrics_address, flush=True)
    if ready is not None:
        ready(server.listener)
    done_wait = asyncio.ensure_future(done.wait())
    drain_wait = asyncio.ensure_future(server.drain_event.wait())
    try:
        await asyncio.wait(
            {done_wait, drain_wait}, return_when=asyncio.FIRST_COMPLETED
        )
        drained = server.drain_event.is_set()
        if drained:
            # SIGTERM: sessions are checkpointing out; wait for them.
            await server.wait_closed()
    finally:
        done_wait.cancel()
        drain_wait.cancel()
        await server.close()
    if drained and not args.once:
        return 0
    result = outcomes[0] if outcomes else None
    if result is None:
        return 2
    return 1 if result.has_race() else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    try:
        names = _split_detector_names(args.detector)
        _make_detectors(names, args)  # fail fast on unknown detector names
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    import asyncio

    try:
        return asyncio.run(_serve_async(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        return 0


def _cmd_push(args: argparse.Namespace) -> int:
    from repro.client import PushError, RaceClient, RetriesExhausted

    client = RaceClient(
        host=args.host,
        port=args.port if args.port is not None else 8787,
        socket_path=args.unix_socket,
        stream_id=args.stream_id,
        retries=args.retries,
        backoff_s=args.backoff,
        connect_timeout_s=args.connect_timeout,
    )
    try:
        outcome = client.push(args.trace)
    except RetriesExhausted as error:
        print(str(error), file=sys.stderr)
        return 2
    except PushError as error:
        print(str(error), file=sys.stderr)
        return 2
    except OSError as error:
        print("push failed: %s" % error, file=sys.stderr)
        return 2
    for line in outcome.lines:
        print(line)
    if args.verbose:
        counters = ", ".join(
            "%s=%s" % (name, value)
            for name, value in sorted(client.stats.items()) if value
        )
        print("push stats: %s" % (counters or "clean first-try push"),
              file=sys.stderr)
    return 1 if outcome.has_race() else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    names = args.benchmark or sorted(BENCHMARKS)
    unknown = [name for name in names if name not in BENCHMARKS]
    if unknown:
        print("unknown benchmark(s): %s" % ", ".join(unknown), file=sys.stderr)
        return 2
    traces = {
        name: get_benchmark(name, scale=args.scale, seed=args.seed)
        for name in names
    }
    detector_names = _split_detector_names(args.detectors)

    def factory():
        return [make_detector(name) for name in detector_names]

    _, table = run_table(traces, factory)
    print(table)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    trace = get_benchmark(args.benchmark, scale=args.scale, seed=args.seed)
    path = dump_trace(trace, args.output)
    print("wrote %d events to %s" % (len(trace), path))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also exposed as the ``repro-race`` console script)."""
    args = _build_parser().parse_args(argv)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "push":
        return _cmd_push(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "witness":
        return _cmd_witness(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
