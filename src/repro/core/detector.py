"""The detector interface shared by every analysis in the library.

A detector consumes a :class:`~repro.trace.trace.Trace` and produces a
:class:`~repro.core.races.RaceReport`.  Streaming detectors (HB, FastTrack,
WCP) additionally expose an event-at-a-time API (:meth:`Detector.reset`,
:meth:`Detector.process`) so that they can be driven online, e.g. directly
from the simulator without materialising a trace first.
"""

from __future__ import annotations

import abc
import time
from typing import Optional

from repro.core.races import RaceReport
from repro.trace.event import Event
from repro.trace.trace import Trace


class Detector(abc.ABC):
    """Abstract base class for race detectors.

    Subclasses must implement :meth:`reset` and :meth:`process`; the default
    :meth:`run` drives them over a whole trace and records the wall-clock
    analysis time in ``report.stats["time_s"]``.
    """

    #: Human-readable detector name, overridden by subclasses.
    name = "detector"

    def __init__(self) -> None:
        self._report: Optional[RaceReport] = None

    # ------------------------------------------------------------------ #
    # Streaming API
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def reset(self, trace: Trace) -> None:
        """Prepare internal state for a fresh run over ``trace``."""

    @abc.abstractmethod
    def process(self, event: Event) -> None:
        """Process a single event, recording races into :attr:`report`."""

    def finish(self) -> None:
        """Hook called after the last event; default is a no-op."""

    @property
    def report(self) -> RaceReport:
        """The report being accumulated by the current run."""
        if self._report is None:
            raise RuntimeError("detector has not been reset with a trace yet")
        return self._report

    def _new_report(self, trace: Trace) -> RaceReport:
        self._report = RaceReport(self.name, trace.name)
        return self._report

    # ------------------------------------------------------------------ #
    # Batch API
    # ------------------------------------------------------------------ #

    def run(self, trace: Trace) -> RaceReport:
        """Run the detector over the whole trace and return its report."""
        self.reset(trace)
        started = time.perf_counter()
        for event in trace:
            self.process(event)
        self.finish()
        report = self.report
        report.stats["time_s"] = time.perf_counter() - started
        report.stats["events"] = len(trace)
        return report

    def __repr__(self) -> str:
        return "%s()" % type(self).__name__
