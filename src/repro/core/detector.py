"""The detector interface shared by every analysis in the library.

A detector consumes a stream of events and produces a
:class:`~repro.core.races.RaceReport`.  Every detector is written in the
streaming style (:meth:`Detector.reset`, :meth:`Detector.process`,
:meth:`Detector.finish`) so that it can be driven online -- by
:meth:`Detector.run` over a materialised :class:`~repro.trace.trace.Trace`,
or by the :class:`~repro.engine.RaceEngine`, which multiplexes one event
stream into several detectors in a single pass.

``reset`` accepts either a full :class:`~repro.trace.trace.Trace` or any
*trace-like* object exposing ``name``, ``threads``, ``__len__`` and
``is_complete`` (the engine's stream context sets ``is_complete = False``
to signal that the event sequence cannot be pre-scanned).

Timing contract
---------------
``report.stats["time_s"]`` always means the *whole* analysis -- the time
spent in ``reset`` (which may do per-trace precomputation, e.g. WCP's
queue-pruning prescan), the event loop, and ``finish`` (which may flush
buffered windows, e.g. the CP/MCM detectors).  ``stats["events_per_s"]``
is ``events / time_s``.  The engine reports the same quantities per
detector when per-event cost accounting is enabled.
"""

from __future__ import annotations

import abc
import time
from typing import Dict, Optional

from repro.core.races import RaceReport, ReportSnapshot
from repro.core.snapshot import SnapshotUnsupportedError
from repro.trace.event import Event
from repro.trace.trace import Trace


class Detector(abc.ABC):
    """Abstract base class for race detectors.

    Subclasses must implement :meth:`reset` and :meth:`process`; the default
    :meth:`run` drives them over a whole trace and records the wall-clock
    analysis time in ``report.stats["time_s"]`` (see the module docstring
    for the exact timing contract).
    """

    #: Human-readable detector name, overridden by subclasses.
    name = "detector"

    #: True when the detector participates in the sharded engine's
    #: replicate-synchronization / route-accesses protocol (see
    #: :mod:`repro.engine.partition`): its clock state must depend only on
    #: the synchronization skeleton plus whatever :meth:`process_foreign`
    #: consumes, so that a shard seeing every sync event but only a subset
    #: of the accesses reaches race verdicts identical to the full run.
    shardable = False

    #: True when accesses performed *inside critical sections* mutate the
    #: detector's clock state (WCP's Rule (a)), so the sharded engine must
    #: replicate them to non-owner shards as "foreign" events.  Detectors
    #: whose clocks only move on sync events (HB, FastTrack) leave this
    #: False and foreign accesses are never transported.
    needs_foreign_accesses = False

    #: True when the detector implements the versioned snapshot protocol
    #: (:meth:`state_snapshot` / :meth:`restore_state`), which is what the
    #: engine-level checkpoint/resume subsystem
    #: (:mod:`repro.engine.checkpoint`) and sharded worker restore build
    #: on.  Detectors whose state is unbounded or window-buffered leave
    #: this False and the engine refuses to checkpoint them up front.
    supports_snapshot = False

    #: Version stamp of the detector's snapshot *state layout*; bumped on
    #: any change so a stale snapshot fails fast instead of restoring into
    #: reinterpreted fields.
    snapshot_version = 0

    #: Set by the engines immediately before a ``reset`` that will be
    #: followed by :meth:`restore_state`: reset-time whole-trace
    #: precomputation (e.g. WCP's releaser-census prescan) would be
    #: overwritten by the restore, so detectors may skip it.  Cleared by
    #: :meth:`restore_state`; a detector that honours the hint must stay
    #: correct (merely slower / more conservative) if no restore follows.
    restore_pending = False

    def __init__(self) -> None:
        self._report: Optional[RaceReport] = None
        self._cost_time_s = 0.0
        self._cost_events = 0

    # ------------------------------------------------------------------ #
    # Streaming API
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def reset(self, trace: Trace) -> None:
        """Prepare internal state for a fresh run over ``trace``.

        ``trace`` may be any trace-like object (see the module docstring);
        detectors that want to pre-scan the whole event sequence must first
        check ``getattr(trace, "is_complete", True)``.
        """

    @abc.abstractmethod
    def process(self, event: Event) -> None:
        """Process a single event, recording races into :attr:`report`."""

    def finish(self) -> None:
        """Hook called after the last event; default is a no-op."""

    def process_foreign(self, event: Event) -> None:
        """Process an access event owned by another shard, clocks only.

        The sharded engine replicates in-critical-section accesses to
        non-owner shards when any detector has ``needs_foreign_accesses``;
        those shards must apply the access's *clock* effects (so WCP's
        Rule (a) keeps every shard's ``P_t`` identical to the full run)
        without race-checking or recording it (the owner shard does that
        exactly once).  The default is a no-op, which is correct for every
        detector whose clocks ignore accesses.
        """

    def sync_clock_state(self) -> Optional[Dict[object, bytes]]:
        """Return the per-thread synchronization clocks, serialized.

        Part of the shard-boundary protocol: shardable detectors return a
        mapping from *thread name* to the serialized
        (:func:`repro.vectorclock.dense.serialize_clock`) clock describing
        that thread's position in the synchronization order, normalized so
        that deferred local-clock bumps do not leak scheduling noise.
        Because the sharded engine replicates the synchronization skeleton
        (and WCP's clock-relevant accesses) to every shard, all shards must
        agree on this state at every batch boundary -- the engine merges the
        states (registry remap + pointwise join) and tests assert the
        agreement.  Detectors without meaningful clock state return None.
        """
        return None

    # ------------------------------------------------------------------ #
    # Snapshot protocol (checkpoint/resume, sharded worker restore)
    # ------------------------------------------------------------------ #

    def snapshot_config(self) -> Dict[str, object]:
        """Return the constructor kwargs that reproduce this configuration.

        The stamp serves two purposes: it travels in every snapshot
        header so a restore into a differently-configured detector fails
        fast (:class:`~repro.core.snapshot.SnapshotMismatchError`), and
        the sharded engine uses it to construct each worker's private
        detector instances -- ``type(d)(**d.snapshot_config())`` must be
        equivalent to ``d`` -- instead of pickling live objects.
        """
        return {}

    def state_snapshot(self) -> bytes:
        """Serialize the detector's complete mid-run state.

        The blob is self-contained (format-version header, configuration
        stamp, thread-interning table, clocks, access histories, report)
        and safe -- it travels through the shared codec
        (:mod:`repro.vectorclock.codec`), never pickle.  Restoring it in
        a fresh process with :meth:`restore_state` and replaying the
        remaining events must produce a report identical to an
        uninterrupted run.  Only meaningful between :meth:`reset` and
        :meth:`finish`.
        """
        raise SnapshotUnsupportedError(
            "detector %s (%s) does not support state snapshots"
            % (self.name, type(self).__name__)
        )

    def restore_state(self, blob: bytes) -> None:
        """Inverse of :meth:`state_snapshot`.

        Must be called after :meth:`reset` (which binds the pass context
        and its shared thread registry); the snapshot's state then
        replaces the freshly-reset state wholesale.  Raises
        :class:`~repro.core.snapshot.SnapshotMismatchError` when the blob
        was written by a different detector class, snapshot format
        version, or configuration.
        """
        raise SnapshotUnsupportedError(
            "detector %s (%s) does not support state snapshots"
            % (self.name, type(self).__name__)
        )

    @property
    def report(self) -> RaceReport:
        """The report being accumulated by the current run."""
        if self._report is None:
            raise RuntimeError("detector has not been reset with a trace yet")
        return self._report

    def _new_report(self, trace: Trace) -> RaceReport:
        self._report = RaceReport(self.name, trace.name)
        self._cost_time_s = 0.0
        self._cost_events = 0
        return self._report

    # ------------------------------------------------------------------ #
    # Engine hooks: cost accounting and snapshotting
    # ------------------------------------------------------------------ #

    def account_cost(self, seconds: float, events: int = 1) -> None:
        """Attribute ``seconds`` of analysis time (over ``events`` events).

        Called by the streaming engine around each :meth:`process` (and the
        final :meth:`finish`) so that a multi-detector single-pass run can
        still report a per-detector ``time_s``.
        """
        self._cost_time_s += seconds
        self._cost_events += events

    @property
    def cost_time_s(self) -> float:
        """Seconds attributed to this detector since the last reset."""
        return self._cost_time_s

    @property
    def cost_events(self) -> int:
        """Events attributed to this detector since the last reset."""
        return self._cost_events

    def snapshot(self, events: Optional[int] = None) -> ReportSnapshot:
        """Return a point-in-time view of the current report.

        ``events`` defaults to the number of events attributed through
        :meth:`account_cost` (which the engine keeps up to date even when
        per-event timing is disabled).
        """
        report = self.report
        return ReportSnapshot(
            detector_name=self.name,
            trace_name=report.trace_name,
            events=self._cost_events if events is None else events,
            races=report.count(),
            raw_races=report.raw_race_count,
            time_s=self._cost_time_s,
        )

    def finalize_stats(self, events: int, elapsed_s: float) -> RaceReport:
        """Record the normalized timing statistics on the current report."""
        report = self.report
        report.stats["time_s"] = elapsed_s
        report.stats["events"] = events
        report.stats["events_per_s"] = (
            events / elapsed_s if elapsed_s > 0.0 else 0.0
        )
        return report

    # ------------------------------------------------------------------ #
    # Batch API
    # ------------------------------------------------------------------ #

    def run(self, trace: Trace) -> RaceReport:
        """Run the detector over the whole trace and return its report.

        The timed region covers ``reset`` + the event loop + ``finish`` so
        that ``stats["time_s"]`` means the same thing for every detector
        regardless of where it does its work.
        """
        started = time.perf_counter()
        self.reset(trace)
        events = 0
        for event in trace:
            self.process(event)
            events += 1
        self.finish()
        elapsed = time.perf_counter() - started
        self.account_cost(elapsed, events=events)
        return self.finalize_stats(events, elapsed)

    def __repr__(self) -> str:
        return "%s()" % type(self).__name__
