"""Per-variable access histories used for race *reporting*.

The paper's race check (end of Section 3.2) keeps, for every variable
``x``, two vector clocks ``R_x`` and ``W_x`` joining the timestamps of all
reads and writes of ``x`` seen so far; an access whose timestamp is not
above the relevant join is in race with *some* earlier conflicting access.
Recovering *which* earlier access (needed to report distinct location
pairs, the unit counted in Table 1) requires a second pass in the paper.

We avoid the second pass by additionally remembering, per variable, per
thread and per program location, the latest access clock.  The ``R_x`` /
``W_x`` joins provide the fast path ("no race here"); only on a failed
check do we scan the per-thread histories to attribute the race to concrete
earlier events.  The history size is bounded by (#threads x #program
locations touching the variable), so the overall algorithm stays linear in
the trace length for a fixed program.

Epoch fast path
---------------
The joins alone make the no-race check O(T) per access (a full pointwise
comparison).  Following FastTrack (and the WCP paper's Section 6 pointer
to "epoch based optimizations"), each join also carries an *epoch*
``c@t`` of the most recent access plus a flag recording that the epoch
characterises the whole join.  The flag is set when the latest access's
clock dominated the join at record time (so the join collapsed to exactly
that clock) *and* the producing detector vouched for exactness (below).
While the flag holds, ``join <= C`` reduces to the O(1) comparison
``c <= C(t)``, with no clock traversal and no allocation.  The flag drops
back to the slow path the moment an access fails to dominate (concurrent
readers, racy writes) and is restored by the next dominating access,
mirroring FastTrack's adaptive read representation.

Exactness contract
------------------
The O(1) reduction is only valid when, for every later access clock ``C``
produced by the same detector run, ``C_a(t) <= C(t)`` implies
``C_a <= C`` pointwise (``C_a`` being the recorded access's clock, ``t``
its thread).  For HB-style timestamping this always holds: a thread's
component only escapes to other clocks via end-of-interval snapshots
(release / fork / join all start a fresh local interval).  For WCP's
``C_e = P_t[t := N_t]`` it holds *unless* a snapshot of the thread's
current release-free block already escaped mid-block -- which only fork
(publishing the parent's ``C``/``H``) and join (publishing the child's
``C``/``H``) can cause, since ``N_t`` bumps only after releases.  The
detectors therefore pass ``exact=`` per access: HB passes True, WCP passes
False exactly for accesses in a block that already leaked through a
fork/join.  With ``exact=False`` the access records normally but never
arms the epoch, so results are bit-identical to the always-slow check.

Ownership contract
------------------
``observe(..., frozen=True)`` hands the history a clock object the caller
guarantees never to mutate afterwards (WCP's cached ``C_t`` is replaced,
never mutated; HB passes a fresh snapshot).  The history then stores
references instead of copies -- in the per-location cells and as the join
itself when the access dominates -- and copies lazily (copy-on-write) only
when a join must actually grow past a frozen clock.  On the steady-state
no-race path this eliminates every per-access clock allocation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.races import RaceReport
from repro.trace.event import Event
from repro.vectorclock.dense import DenseClock

# (event, clock) of the latest access at one (thread, location).
_Cell = Tuple[Event, object]


class VariableHistory:
    """Access history for a single shared variable.

    ``read_join`` / ``write_join`` are ``None`` until the first access of
    the respective kind (None compares as the bottom clock).  The epoch
    state (``r_tid``/``r_time``/``r_fast`` and the write-side mirror) is
    documented in the module docstring.
    """

    __slots__ = (
        "read_join", "write_join", "_rj_owned", "_wj_owned",
        "reads", "writes",
        "w_tid", "w_time", "w_fast",
        "r_tid", "r_time", "r_fast",
    )

    def __init__(self) -> None:
        self.read_join = None
        self.write_join = None
        # Whether the history may mutate the join in place (False while the
        # join aliases a frozen caller clock; copy-on-write flips it).
        self._rj_owned = False
        self._wj_owned = False
        # thread -> location -> (event, clock)
        self.reads: Dict[str, Dict[str, _Cell]] = {}
        self.writes: Dict[str, Dict[str, _Cell]] = {}
        self.w_tid = None
        self.w_time = 0
        self.w_fast = False
        self.r_tid = None
        self.r_time = 0
        self.r_fast = False

    # ------------------------------------------------------------------ #
    # Ordering checks (fast epoch path, falling back to the full join)
    # ------------------------------------------------------------------ #

    def _writes_ordered(self, clock) -> bool:
        """Return True when every earlier write is ordered before ``clock``."""
        if self.w_fast:
            return self.w_time <= clock.get(self.w_tid)
        join = self.write_join
        return join is None or join <= clock

    def _reads_ordered(self, clock) -> bool:
        """Return True when every earlier read is ordered before ``clock``."""
        if self.r_fast:
            return self.r_time <= clock.get(self.r_tid)
        join = self.read_join
        return join is None or join <= clock

    def _unordered_cells(
        self, cells: Dict[str, Dict[str, _Cell]], event: Event, clock
    ) -> List[Event]:
        racy = []
        for thread, by_loc in cells.items():
            if thread == event.thread:
                continue
            for prior_event, prior_clock in by_loc.values():
                if not prior_clock <= clock:
                    racy.append(prior_event)
        return racy

    # ------------------------------------------------------------------ #
    # Fused observe paths (check + record without repeating comparisons)
    # ------------------------------------------------------------------ #

    def observe_read(self, event: Event, clock, key, exact: bool) -> List[Event]:
        """Check a read against earlier writes, then record it.

        ``clock`` must already follow the ownership contract (frozen or a
        private copy); ``key`` is the component key of the accessing thread
        inside ``clock`` (its tid, or its name for name-keyed clocks).
        """
        # Ordering checks inlined from _writes_ordered/_reads_ordered:
        # this is the per-access hot path and the epoch comparison must
        # stay a handful of bytecodes.  On the dense backend the epoch
        # lookups index the raw component buffer instead of bouncing
        # through ``clock.get`` (one method call per lookup otherwise).
        times = clock._times if type(clock) is DenseClock else None
        if self.w_fast:
            tid = self.w_tid
            if times is not None:
                writes_ordered = (
                    self.w_time <= times[tid] if tid < len(times)
                    else self.w_time <= 0
                )
            else:
                writes_ordered = self.w_time <= clock.get(tid)
        else:
            join = self.write_join
            writes_ordered = join is None or join <= clock
        if writes_ordered:
            racy: List[Event] = []
        else:
            racy = self._unordered_cells(self.writes, event, clock)

        if self.r_fast:
            tid = self.r_tid
            if times is not None:
                reads_ordered = (
                    self.r_time <= times[tid] if tid < len(times)
                    else self.r_time <= 0
                )
            else:
                reads_ordered = self.r_time <= clock.get(tid)
        else:
            join = self.read_join
            reads_ordered = join is None or join <= clock
        if reads_ordered:
            # The join collapses to this clock: alias it and (re)arm the epoch.
            self.read_join = clock
            self._rj_owned = False
            if times is not None:
                time = times[key] if key < len(times) else 0
            else:
                time = clock.get(key)
            self.r_tid = key
            self.r_time = time
            self.r_fast = exact and time > 0
        else:
            join = self.read_join
            if not self._rj_owned:
                join = self.read_join = join.copy()
                self._rj_owned = True
            join.join(clock)
            self.r_fast = False

        cells = self.reads.get(event.thread)
        if cells is None:
            cells = self.reads[event.thread] = {}
        cells[event.location()] = (event, clock)
        return racy

    def observe_write(self, event: Event, clock, key, exact: bool) -> List[Event]:
        """Check a write against earlier reads and writes, then record it."""
        # Dense-backend epoch lookups index the raw buffer (see observe_read).
        times = clock._times if type(clock) is DenseClock else None
        if self.w_fast:
            tid = self.w_tid
            if times is not None:
                writes_ordered = (
                    self.w_time <= times[tid] if tid < len(times)
                    else self.w_time <= 0
                )
            else:
                writes_ordered = self.w_time <= clock.get(tid)
        else:
            join = self.write_join
            writes_ordered = join is None or join <= clock
        if self.r_fast:
            tid = self.r_tid
            if times is not None:
                reads_ordered = (
                    self.r_time <= times[tid] if tid < len(times)
                    else self.r_time <= 0
                )
            else:
                reads_ordered = self.r_time <= clock.get(tid)
        else:
            join = self.read_join
            reads_ordered = join is None or join <= clock
        racy: List[Event] = []
        if not writes_ordered:
            racy.extend(self._unordered_cells(self.writes, event, clock))
        if not reads_ordered:
            racy.extend(self._unordered_cells(self.reads, event, clock))

        if writes_ordered:
            self.write_join = clock
            self._wj_owned = False
            if times is not None:
                time = times[key] if key < len(times) else 0
            else:
                time = clock.get(key)
            self.w_tid = key
            self.w_time = time
            self.w_fast = exact and time > 0
        else:
            join = self.write_join
            if not self._wj_owned:
                join = self.write_join = join.copy()
                self._wj_owned = True
            join.join(clock)
            self.w_fast = False

        cells = self.writes.get(event.thread)
        if cells is None:
            cells = self.writes[event.thread] = {}
        cells[event.location()] = (event, clock)
        return racy

    # ------------------------------------------------------------------ #
    # Snapshot support (checkpoint/resume protocol)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> Dict[str, object]:
        """Return this variable's history as codec-encodable structures.

        The join clocks are serialized by value; restore re-marks them as
        owned (the frozen-clock aliasing they may have had is a memory
        optimisation, never observable in verdicts), which keeps
        copy-on-write behaviour correct without tracking identities.
        """
        return {
            "read_join": self.read_join,
            "write_join": self.write_join,
            "reads": {
                thread: dict(by_loc) for thread, by_loc in self.reads.items()
            },
            "writes": {
                thread: dict(by_loc) for thread, by_loc in self.writes.items()
            },
            "w": (self.w_tid, self.w_time, self.w_fast),
            "r": (self.r_tid, self.r_time, self.r_fast),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "VariableHistory":
        """Inverse of :meth:`state_dict`."""
        history = cls()
        history.read_join = state["read_join"]
        history.write_join = state["write_join"]
        history._rj_owned = history.read_join is not None
        history._wj_owned = history.write_join is not None
        history.reads = {
            thread: dict(by_loc) for thread, by_loc in state["reads"].items()
        }
        history.writes = {
            thread: dict(by_loc) for thread, by_loc in state["writes"].items()
        }
        history.w_tid, history.w_time, history.w_fast = state["w"]
        history.r_tid, history.r_time, history.r_fast = state["r"]
        return history

    # ------------------------------------------------------------------ #
    # Compatibility layer (separate check / record, copying semantics)
    # ------------------------------------------------------------------ #

    def check_read(self, event: Event, clock) -> List[Event]:
        """Return earlier writes racing with the read ``event`` (may be empty)."""
        if self._writes_ordered(clock):
            return []
        return self._unordered_cells(self.writes, event, clock)

    def check_write(self, event: Event, clock) -> List[Event]:
        """Return earlier reads/writes racing with the write ``event``."""
        racy: List[Event] = []
        if not self._writes_ordered(clock):
            racy.extend(self._unordered_cells(self.writes, event, clock))
        if not self._reads_ordered(clock):
            racy.extend(self._unordered_cells(self.reads, event, clock))
        return racy

    def record_read(self, event: Event, clock, exact: bool = False) -> None:
        """Record a read access and its timestamp (copies ``clock``)."""
        self.observe_read(event, clock.copy(), event.thread, exact)

    def record_write(self, event: Event, clock, exact: bool = False) -> None:
        """Record a write access and its timestamp (copies ``clock``)."""
        self.observe_write(event, clock.copy(), event.thread, exact)


class AccessHistory:
    """All variable histories plus the report-recording glue."""

    def __init__(self) -> None:
        self._variables: Dict[str, VariableHistory] = {}

    def _history(self, variable: str) -> VariableHistory:
        history = self._variables.get(variable)
        if history is None:
            history = VariableHistory()
            self._variables[variable] = history
        return history

    def observe(
        self,
        event: Event,
        clock,
        report: RaceReport,
        on_race: Optional[Callable[[Event, Event], None]] = None,
        exact: bool = False,
        key=None,
        frozen: bool = False,
    ) -> int:
        """Check ``event`` against the history, record it, report races.

        ``exact`` arms the O(1) epoch fast path (see the module docstring
        for the contract the caller must satisfy); ``key`` is the clock
        component key of the accessing thread (defaults to
        ``event.thread``, which matches name-keyed clocks); ``frozen``
        transfers ownership of ``clock`` to the history so no defensive
        copy is taken.

        Returns the number of racy earlier events found for this access.
        """
        history = self._variables.get(event.variable)
        if history is None:
            history = self._variables[event.variable] = VariableHistory()
        if not frozen:
            clock = clock.copy()
        if key is None:
            key = event.thread
        if event.is_read():
            racy = history.observe_read(event, clock, key, exact)
        else:
            racy = history.observe_write(event, clock, key, exact)
        if racy:
            for earlier in racy:
                report.add(earlier, event)
                if on_race is not None:
                    on_race(earlier, event)
        return len(racy)

    def clear(self) -> None:
        """Drop all recorded history."""
        self._variables.clear()

    # ------------------------------------------------------------------ #
    # Snapshot support (checkpoint/resume protocol)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> Dict[str, object]:
        """Return every variable's history as codec-encodable structures."""
        return {
            variable: history.state_dict()
            for variable, history in self._variables.items()
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "AccessHistory":
        """Inverse of :meth:`state_dict`."""
        history = cls()
        history._variables = {
            variable: VariableHistory.from_state(entry)
            for variable, entry in state.items()
        }
        return history
