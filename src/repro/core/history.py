"""Per-variable access histories used for race *reporting*.

The paper's race check (end of Section 3.2) keeps, for every variable
``x``, two vector clocks ``R_x`` and ``W_x`` joining the timestamps of all
reads and writes of ``x`` seen so far; an access whose timestamp is not
above the relevant join is in race with *some* earlier conflicting access.
Recovering *which* earlier access (needed to report distinct location
pairs, the unit counted in Table 1) requires a second pass in the paper.

We avoid the second pass by additionally remembering, per variable, per
thread and per program location, the latest access clock.  The ``R_x`` /
``W_x`` joins provide the O(1) fast path ("no race here"); only on a failed
check do we scan the per-thread histories to attribute the race to concrete
earlier events.  The history size is bounded by (#threads x #program
locations touching the variable), so the overall algorithm stays linear in
the trace length for a fixed program.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.races import RaceReport
from repro.trace.event import Event
from repro.vectorclock.clock import VectorClock

# (event, clock) of the latest access at one (thread, location).
_Cell = Tuple[Event, VectorClock]


class VariableHistory:
    """Access history for a single shared variable."""

    __slots__ = ("read_join", "write_join", "reads", "writes")

    def __init__(self) -> None:
        self.read_join = VectorClock.bottom()
        self.write_join = VectorClock.bottom()
        # thread -> location -> (event, clock)
        self.reads: Dict[str, Dict[str, _Cell]] = {}
        self.writes: Dict[str, Dict[str, _Cell]] = {}

    def record_read(self, event: Event, clock: VectorClock) -> None:
        """Record a read access and its timestamp."""
        self.read_join.join(clock)
        cells = self.reads.setdefault(event.thread, {})
        cells[event.location()] = (event, clock.copy())

    def record_write(self, event: Event, clock: VectorClock) -> None:
        """Record a write access and its timestamp."""
        self.write_join.join(clock)
        cells = self.writes.setdefault(event.thread, {})
        cells[event.location()] = (event, clock.copy())

    def _unordered_cells(
        self, cells: Dict[str, Dict[str, _Cell]], event: Event, clock: VectorClock
    ) -> List[Event]:
        racy = []
        for thread, by_loc in cells.items():
            if thread == event.thread:
                continue
            for prior_event, prior_clock in by_loc.values():
                if not prior_clock <= clock:
                    racy.append(prior_event)
        return racy

    def check_read(self, event: Event, clock: VectorClock) -> List[Event]:
        """Return earlier writes racing with the read ``event`` (may be empty)."""
        if self.write_join <= clock:
            return []
        return self._unordered_cells(self.writes, event, clock)

    def check_write(self, event: Event, clock: VectorClock) -> List[Event]:
        """Return earlier reads/writes racing with the write ``event``."""
        racy: List[Event] = []
        if not (self.write_join <= clock):
            racy.extend(self._unordered_cells(self.writes, event, clock))
        if not (self.read_join <= clock):
            racy.extend(self._unordered_cells(self.reads, event, clock))
        return racy


class AccessHistory:
    """All variable histories plus the report-recording glue."""

    def __init__(self) -> None:
        self._variables: Dict[str, VariableHistory] = {}

    def _history(self, variable: str) -> VariableHistory:
        history = self._variables.get(variable)
        if history is None:
            history = VariableHistory()
            self._variables[variable] = history
        return history

    def observe(
        self,
        event: Event,
        clock: VectorClock,
        report: RaceReport,
        on_race: Optional[Callable[[Event, Event], None]] = None,
    ) -> int:
        """Check ``event`` against the history, record it, report races.

        Returns the number of racy earlier events found for this access.
        """
        history = self._history(event.variable)
        if event.is_read():
            racy = history.check_read(event, clock)
        else:
            racy = history.check_write(event, clock)
        for earlier in racy:
            report.add(earlier, event)
            if on_race is not None:
                on_race(earlier, event)
        if event.is_read():
            history.record_read(event, clock)
        else:
            history.record_write(event, clock)
        return len(racy)

    def clear(self) -> None:
        """Drop all recorded history."""
        self._variables.clear()
