"""Algorithm 1: the linear-time WCP vector-clock detector.

This is the paper's central algorithmic contribution (Section 3).  The
detector processes the trace in a single streaming pass and maintains:

``N_t``
    an integer local clock per thread, incremented just before processing
    an event whose thread-order predecessor was a release;
``P_t``
    the WCP-predecessor clock of thread ``t`` (the join of ``C_e`` over all
    events ``e`` WCP-before the last event of ``t``);
``H_t``
    the happens-before clock of thread ``t`` (component ``t`` always equals
    ``N_t``);
``P_l`` / ``H_l``
    per-lock copies of the WCP/HB clocks of the last release of ``l``;
``L^r_{l,x}`` / ``L^w_{l,x}``
    per lock and variable, the join of the HB times of all releases of
    ``l`` whose critical section read / wrote ``x`` (these implement
    Rule (a) of WCP);
``Acq_l(t)`` / ``Rel_l(t)``
    per lock and thread, FIFO queues holding the acquire timestamps and
    release HB-times of critical sections performed by *other* threads
    (these implement Rule (b)).

The pseudocode's per-(lock, thread) queues are represented here as one
shared per-lock **log** of critical sections (acquire timestamp, release
HB-time, owning thread) plus a per-(lock, thread) FIFO *cursor* into it.
The two are observationally identical on complete traces -- each thread's
queue is exactly the other-thread suffix of the log past its cursor --
but the log form has two advantages: appends are O(1) instead of O(T),
and a thread first observed *mid-stream* (the engine's live sources have
no thread census at reset time) still sees every earlier critical
section, which per-thread queues materialised at append time cannot
provide.  Consumed log entries are reclaimed when queue pruning is
active (see below).

The derived event timestamp is ``C_e = P_t[t := N_t]`` taken right after
processing ``e``.  Theorem 2 states ``a <=_WCP b  iff  C_a <= C_b`` (for
``a`` earlier than ``b``), so the race check is a per-variable clock
comparison (see :mod:`repro.core.history`).

Fork and join events are not part of the paper's formal model but are
emitted by real loggers; we treat them as inviolable program-order edges
(like thread order) by joining the parent's ``C`` into the child's ``P``
and ``H`` on fork, and symmetrically on join.

One deliberate deviation from the literal pseudocode: Definition 3's
Rule (a) requires the event in ``CS(r)`` to *conflict* with the later
access, and conflicting events must be from different threads.  The
pseudocode's ``L^r_{l,x}`` / ``L^w_{l,x}`` clocks join the HB times of all
releases -- including releases performed by the reading/writing thread
itself -- which can introduce orderings (and hence hide races) that the
definition does not impose.  We therefore keep those clocks per releasing
thread and skip the accessing thread's own contribution, which makes the
detector agree exactly with the closure oracle
(:class:`repro.core.closure.WCPClosure`); pass ``strict_pseudocode=True``
to reproduce the literal Algorithm 1 behaviour instead.

Hot-path engineering (the constant factor behind Theorem 3's
``O(N * (T^2 + L))`` bound):

* **Interned thread ids** -- every per-thread structure is a flat list
  indexed by the dense integer tid of a
  :class:`~repro.vectorclock.registry.ThreadRegistry` (adopted from the
  trace / engine source when available, so pre-stamped ``event.tid``
  values are trusted and no per-event hashing happens at all).
* **Dense clocks** -- all internal clocks are array-backed
  :class:`~repro.vectorclock.dense.DenseClock`\\ s by default
  (``clock_backend="dense"``); pass ``clock_backend="dict"`` for the
  sparse representation (used by the parity tests).
* **Incremental ``C_t``** -- instead of materialising
  ``P_t.copy().assign(t, N_t)`` per event, each thread's ``C_t`` is
  cached and invalidated only when ``P_t`` actually grows (all ``P_t``
  mutations go through ``merge``, which reports changes) or ``N_t``
  bumps.  The cached object is *frozen*: it is replaced on rebuild, never
  mutated, so the Rule (b) log and the access history can hold references
  to it without copying.  Inside the Rule (b) cursor walk this turns the
  per-iteration ``_clock_c`` rebuild into a rebuild-on-actual-change.
* **Epoch-accelerated race checks** -- accesses flow into the shared
  :class:`~repro.core.history.AccessHistory` with ``exact=True`` unless a
  fork/join leaked a mid-block snapshot of the thread's current
  release-free block (the condition under which the FastTrack-style O(1)
  epoch comparison is provably equivalent to the full join comparison for
  WCP timestamps -- see the history module docstring).

Space is linear in the worst case due to the FIFO queues, and the
detector records the maximum total queue length so Table 1's column 11
can be reproduced.

One exact (semantics-preserving) optimisation is applied by default: log
entries are reclaimed once every thread that releases ``l`` somewhere in
the trace has consumed them (a thread that never releases the lock never
reads its cursor, so it cannot hold entries alive).  This changes the
memory profile dramatically on traces with thread-local locks (which
would otherwise accumulate entries forever).  The releaser census needs
the whole trace at :meth:`reset`; when fed from a stream
(``is_complete`` False) or with ``prune_queues=False`` the log is kept
in full, matching the pseudocode's worst-case linear space.

``report.stats["max_queue_total"]`` still reports the *pseudocode's*
queue occupancy (each critical section contributes one acquire and one
release entry per other-thread queue) so that Table 1's column 11 stays
comparable with the paper.
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Deque, Dict, List, Optional, Set

from repro.core.detector import Detector
from repro.core.history import AccessHistory, VariableHistory
from repro.core.races import RaceReport
from repro.core.snapshot import adopt_registry_names, pack_state, unpack_for
from repro.trace.event import Event, EventType
from repro.trace.trace import Trace
from repro.vectorclock import clock_class
from repro.vectorclock.clock import VectorClock
from repro.vectorclock.dense import DenseClock
from repro.vectorclock.registry import ThreadRegistry


class _RuleACell:
    """One ``L^r_{l,x}`` / ``L^w_{l,x}`` cell: release HB-times per thread.

    ``by_tid`` holds, per releasing thread, the join of the HB times of its
    releases of the lock whose critical section touched the variable --
    the exact structure Rule (a) is defined over.

    On traces obeying lock semantics the entries form a *chain*: critical
    sections of one lock are HB-totally-ordered (each acquire joins the
    previous release's ``H_l``), so the most recent release's HB time
    dominates every entry.  ``top`` / ``second`` cache the most recent
    entry and the most recent entry owned by a different thread, which
    collapses the per-access "join all entries except the accessing
    thread's own" to a single merge:

    * accessing thread != ``top_tid``  ->  join is exactly ``top``;
    * accessing thread == ``top_tid``  ->  join is exactly ``second``.

    The caches alias the ``by_tid`` objects (which only mutate inside
    :meth:`WCPDetector._join_release_time`, where the caches are
    re-established), so maintaining them costs no allocation.  Locks whose
    critical sections are observed to overlap (possible only on
    unvalidated, e.g. windowed, trace fragments) are marked tainted by the
    detector, and Rule (a) falls back to the full ``by_tid`` walk there.

    ``version`` / ``seen`` implement the per-cell *visit memo*: ``version``
    is bumped on every release that touches the cell, and ``seen`` records,
    per accessing thread, the version whose content that thread last joined
    into its ``P_t``.  Since ``P_t`` only grows and the cell only changes
    when ``version`` bumps, a repeat visit at an unchanged version is a
    guaranteed no-op and the merge (even the tainted full walk) is skipped
    entirely -- the Rule (a) lookup degenerates to one dict probe.
    """

    __slots__ = (
        "by_tid", "top_tid", "top", "second_tid", "second", "version", "seen",
    )

    def __init__(self) -> None:
        self.by_tid: Dict[int, object] = {}
        self.top_tid = -1
        self.top = None
        self.second_tid = -1
        self.second = None
        self.version = 0
        self.seen: Dict[int, int] = {}


class _LockState:
    """All per-lock detector state, consolidated behind one dict lookup.

    A lock event used to pay half a dozen string-keyed lookups (log, base,
    cursor, ``P_l``, ``H_l``, holder, Rule (a) tables); everything now
    lives on one object fetched once, with the per-thread cursors and
    open-entry indices keyed by plain int tids.
    """

    __slots__ = (
        "log", "base", "cursor", "open_entry", "pl", "hl",
        "holder", "tainted", "releasers", "lr", "lw",
        "evicted_acq", "evicted_rel",
        "read_lr", "read_lw",
        "read_pl", "read_hl", "notify_p", "notify_h",
        "reclaim_blocker",
    )

    def __init__(self) -> None:
        #: Shared critical-section log: [acquire clock, release HB-time or
        #: None while open, owning tid, acquire epoch] per entry.  The
        #: epoch (the owner's ``N_o`` at acquire) is set when no mid-block
        #: snapshot of the owner's block escaped before the acquire, in
        #: which case the Rule (b) gate ``A <= C_t`` reduces to the O(1)
        #: comparison ``N_o <= C_t(o)`` (same exactness lemma as the
        #: access history's epoch fast path); None forces the full
        #: comparison.  Snapshots strip the field (it is a pure
        #: accelerator), so restored detectors walk pre-snapshot entries
        #: with the full comparison and identical verdicts.
        self.log: Deque[list] = deque()
        #: Absolute index of the log's first retained entry.
        self.base = 0
        #: tid -> absolute log index consumed so far (Rule (b) cursor).
        self.cursor: Dict[int, int] = {}
        #: tid -> absolute log index of the thread's open section.
        self.open_entry: Dict[int, int] = {}
        #: Per-owner joins over entries dropped by the stream-mode
        #: quiescence heuristic (acquire clocks / release HB-times), the
        #: recovery summary for threads whose cursor lags the eviction
        #: horizon.  None until the first eviction.
        self.evicted_acq: Optional[Dict[int, object]] = None
        self.evicted_rel: Optional[Dict[int, object]] = None
        #: P / H clocks of the last release (None = bottom).
        self.pl = None
        self.hl = None
        #: tid currently holding the lock (chain-taint tracking).
        self.holder: Optional[int] = None
        #: True once overlapping critical sections were observed.
        self.tainted = False
        #: tids that release this lock somewhere in the trace (pruned mode).
        self.releasers: Set[int] = set()
        #: Rule (a) tables: variable -> cell.
        self.lr: Dict[str, _RuleACell] = {}
        self.lw: Dict[str, _RuleACell] = {}
        #: Rule (a) cells published by *read-mode* releases (variable ->
        #: cell).  Kept apart from ``lr``/``lw`` because only accesses
        #: inside exclusive sections may consume them (read sections do
        #: not exclude each other), and because read releases are not
        #: totally ordered -- consumers must always take the full
        #: ``by_tid`` walk, never the chain fast path.
        self.read_lr: Dict[str, _RuleACell] = {}
        self.read_lw: Dict[str, _RuleACell] = {}
        #: Joined P / H clocks of read-mode rwlock releases since the last
        #: write-acquire (None = no published read sections).  A
        #: write-acquire consumes and clears them; read sections do not
        #: order each other, so read-acquires never look at them.
        self.read_pl = None
        self.read_hl = None
        #: Joined C / H clocks of every notify on this monitor (never
        #: cleared: notifies wake all present and future waiters).
        self.notify_p = None
        self.notify_h = None
        #: Consumer that blocked the last reclaim scan (transient
        #: accelerator: while its cursor still sits at the log base and it
        #: does not own the front entry, rescanning is pointless).  Never
        #: serialized; restore starts from None.
        self.reclaim_blocker: Optional[int] = None


class WCPDetector(Detector):
    """Streaming WCP race detector (Algorithm 1).

    Parameters
    ----------
    track_queue_stats:
        When True (default) record the maximum total FIFO-queue length in
        ``report.stats["max_queue_total"]`` and the fraction of the
        processed events in ``report.stats["max_queue_fraction"]``
        (Table 1, col 11).
    strict_pseudocode:
        When True, follow Algorithm 1 literally and let Rule (a) joins
        include releases performed by the accessing thread itself (see the
        module docstring).  Default False (agree with Definition 3).
    prune_queues:
        When True (default) reclaim critical-section log entries consumed
        by every releasing thread (exactly equivalent, far less memory).
        Requires the full trace at :meth:`reset`; automatically disabled
        when reset with a non-prescannable stream context.
    stream_reclaim:
        When True, reclaim Rule (b) log entries *in stream mode* (where the
        releaser census is unavailable) with the epoch-accelerated
        thread-quiescence heuristic: a closed front entry is dropped once
        every other known thread has either walked past it, never entered a
        critical section of the lock (locality assumption), or provably
        gains nothing from consuming it (the acquire is already below the
        thread's WCP time -- checked via an O(1) owner-epoch pre-filter
        before the full comparison -- and the release time is already in
        its ``P_t``).  Dropped entries leave behind per-owner acquire /
        release joins through which a thread whose assumed quiescence was
        wrong still consumes the whole evicted region exactly (see
        :meth:`_reclaim_quiescent` / :meth:`_consume_evicted`); the only
        loss is a late consumer entitled to a strict *prefix* of the
        evicted region, whose missing merges can surface extra (never
        fewer) race reports on adversarial streams -- why the heuristic
        is opt-in (the CLI enables it under ``--stream``).  Default False.
    clock_backend:
        Internal clock representation: "dense" (default, array-backed
        :class:`~repro.vectorclock.dense.DenseClock`) or "dict" (sparse
        :class:`~repro.vectorclock.clock.VectorClock`).  Both are keyed by
        interned tids and produce identical reports; the parity tests run
        both.
    """

    name = "WCP"

    #: Sharded-engine contract: clock state depends on the sync skeleton
    #: plus in-critical-section accesses, which Rule (a) feeds into P_t --
    #: so those must be replicated to non-owner shards (process_foreign).
    shardable = True
    needs_foreign_accesses = True

    #: WCP's per-event state is bounded and incrementally maintained (the
    #: paper's central property), so a mid-run snapshot is compact and the
    #: checkpoint/resume protocol is supported in full.
    supports_snapshot = True
    snapshot_version = 2

    #: Stream-reclaim only bothers scanning once a lock's log is this long.
    _QUIESCE_LOG_THRESHOLD = 64

    def __init__(
        self,
        track_queue_stats: bool = True,
        strict_pseudocode: bool = False,
        prune_queues: bool = True,
        stream_reclaim: bool = False,
        clock_backend: str = "dense",
    ) -> None:
        super().__init__()
        self._track_queue_stats = track_queue_stats
        self._strict_pseudocode = strict_pseudocode
        self._prune_queues = prune_queues
        self._stream_reclaim = stream_reclaim
        self.clock_backend = clock_backend
        self._clock_cls = clock_class(clock_backend)
        self._trace: Optional[Trace] = None

    # ------------------------------------------------------------------ #
    # State management
    # ------------------------------------------------------------------ #

    def reset(self, trace: Trace) -> None:
        self._trace = trace
        self._new_report(trace)
        registry = getattr(trace, "registry", None)
        # Events stamped by the adopted registry carry trustworthy tids;
        # with a private registry every tid is re-interned per event.
        self._trust_tids = registry is not None
        self._registry: ThreadRegistry = (
            registry if registry is not None else ThreadRegistry()
        )

        # Per-thread state, indexed by tid.  ``_nt[tid] == 0`` means the
        # thread has not been initialised yet (live local clocks are >= 1).
        self._nt: List[int] = []
        self._pt: List[object] = []
        self._ht: List[object] = []
        # Cached frozen ``C_t`` per thread (None = needs rebuild).
        self._ct: List[object] = []
        self._prev_release: List[bool] = []
        # ``N_t`` value at the last mid-block snapshot leak (fork by the
        # thread / join consuming it); -1 when the current block is clean.
        self._leak: List[int] = []
        # Per-thread stack of open critical sections:
        # (lock, variables read, variables written).
        self._open_sections: List[Optional[list]] = []
        # Per-thread map of rwlocks currently held in read mode:
        # lock -> [variables read, variables written] inside the section
        # (their ``rrel`` must publish into the lock's read accumulators
        # and read cells, not run the full mutex-release procedure).
        self._read_held: List[Optional[Dict[str, list]]] = []
        #: Thread names in initialisation order (audience statistics).
        self._thread_names: List[str] = []
        #: Per-barrier generation state: [acc_p, acc_h, participant tids].
        self._barriers: Dict[str, list] = {}
        #: tid -> {barrier name: accumulator version already merged} for
        #: barriers where the thread has an outstanding arrival in a
        #: still-open generation.  A real barrier keeps such a thread
        #: blocked until every party has arrived, so each of its
        #: subsequent events first re-joins the open generation's
        #: accumulator (which may have grown since the arrival); the
        #: version gate skips the merge when it has not.  See
        #: :meth:`_join_open_barriers`.
        self._barrier_waiting: Dict[int, Dict[str, int]] = {}

        # All per-lock state (Rule (a) tables, Rule (b) log + cursors,
        # P_l / H_l, chain-taint tracking) lives in one object per lock.
        self._locks: Dict[str, _LockState] = {}

        self._history = AccessHistory()
        self._queue_total = 0
        self._max_queue_total = 0
        self._processed_events = 0

        # Threads that release each lock somewhere in the trace: queues for
        # other threads are never read, so they need not be kept.  The
        # prescan needs the whole trace up front; when fed from a stream
        # (``is_complete`` False) fall back to keeping every queue.  A
        # pending restore makes the prescan pure waste (the snapshot
        # carries the censused releaser sets and modes), so skip it --
        # conservatively disabling pruning, which the restore overwrites.
        self._effective_prune = (
            self._prune_queues
            and not self.restore_pending
            and getattr(trace, "is_complete", True)
        )
        # Quiescence reclamation replaces the census exactly when the
        # census is unavailable (stream) but pruning is wanted.
        self._quiesce_reclaim = (
            self._stream_reclaim
            and self._prune_queues
            and not self._effective_prune
        )
        self._stream_reclaimed = 0
        if self._effective_prune:
            intern = self._registry.intern
            locks = self._locks
            release = EventType.RELEASE
            rrel = EventType.RREL
            for event in trace:
                # ``rrel`` threads are censused too: a write-mode rrel runs
                # the same Rule (b) log walk a mutex release does, so its
                # thread's cursor must gate reclamation (read-mode rrels
                # never walk -- counting them is conservative, not wrong).
                etype = event.etype
                if etype is release or etype is rrel:
                    state = locks.get(event.target)
                    if state is None:
                        state = locks[event.target] = _LockState()
                    state.releasers.add(intern(event.thread))

        intern = self._registry.intern
        for thread in trace.threads:
            self._ensure_thread(intern(thread), thread)

    def _ensure_thread(self, tid: int, name: str) -> None:
        nt = self._nt
        if tid >= len(nt):
            grow = tid + 1 - len(nt)
            nt.extend([0] * grow)
            self._pt.extend([None] * grow)
            self._ht.extend([None] * grow)
            self._ct.extend([None] * grow)
            self._prev_release.extend([False] * grow)
            self._leak.extend([-1] * grow)
            self._open_sections.extend([None] * grow)
            self._read_held.extend([None] * grow)
        if nt[tid] == 0:
            nt[tid] = 1
            self._pt[tid] = self._clock_cls.bottom()
            self._ht[tid] = self._clock_cls.single(tid, 1)
            self._ct[tid] = None
            self._prev_release[tid] = False
            self._leak[tid] = -1
            self._open_sections[tid] = []
            self._read_held[tid] = {}
            self._thread_names.append(name)

    def _lock_state(self, lock: str) -> _LockState:
        state = self._locks.get(lock)
        if state is None:
            state = self._locks[lock] = _LockState()
        return state

    @property
    def _cs_log(self) -> Dict[str, Deque[list]]:
        """Per-lock critical-section logs (compatibility view)."""
        return {lock: state.log for lock, state in self._locks.items()}

    # ------------------------------------------------------------------ #
    # Clock helpers
    # ------------------------------------------------------------------ #

    def _clock_c(self, tid: int) -> object:
        """Return the cached frozen ``C_t = P_t[t := N_t]``.

        The returned object must never be mutated: invalidation replaces
        it with a fresh build, so the Rule (b) log and the access history
        can safely alias it.
        """
        ct = self._ct[tid]
        if ct is None:
            ct = self._pt[tid].copy().assign(tid, self._nt[tid])
            self._ct[tid] = ct
        return ct

    def _bump_queue_total(self, delta: int) -> None:
        if not self._track_queue_stats:
            return
        self._queue_total += delta
        if self._queue_total > self._max_queue_total:
            self._max_queue_total = self._queue_total

    # ------------------------------------------------------------------ #
    # Event dispatch
    # ------------------------------------------------------------------ #

    def _thread_prologue(self, event: Event) -> int:
        """Shared per-event prologue: intern, initialise, apply the bump.

        Returns the event's tid.  :meth:`process_foreign` calls this;
        :meth:`process` inlines a copy of it for speed -- the deferred
        ``N_t`` bump must advance at the same event on every shard, so any
        change here must be mirrored there.
        """
        self._processed_events += 1
        tid = event.tid
        if tid is None or not self._trust_tids:
            tid = self._registry.intern(event.thread)
        nt_list = self._nt
        if tid >= len(nt_list) or nt_list[tid] == 0:
            self._ensure_thread(tid, event.thread)
        prev = self._prev_release
        if prev[tid]:
            # The previous event of this thread was a release: bump N_t.
            nt = nt_list[tid] + 1
            nt_list[tid] = nt
            self._ht[tid].assign(tid, nt)
            self._ct[tid] = None
            prev[tid] = False
        if self._barrier_waiting:
            waiting = self._barrier_waiting.get(tid)
            if waiting:
                self._join_open_barriers(tid, waiting)
        return tid

    def _join_open_barriers(self, tid: int, waiting: Dict[str, int]) -> None:
        """Order a blocked arriver's next events after all arrivals so far.

        Between its own arrival and the generation's close the thread was
        really blocked inside the barrier, so any event it performs
        afterwards is ordered after every arrival the open generation has
        accumulated -- including arrivals recorded *after* its own.
        Arrivals are replicated, so the accumulator content is identical
        on every shard at every stream position and the merge stays
        deterministic under sharding.
        """
        pt = self._pt[tid]
        ht = self._ht[tid]
        changed = False
        for name, seen in waiting.items():
            entry = self._barriers.get(name)
            if entry is None or entry[3] == seen:
                continue
            waiting[name] = entry[3]
            if entry[0] is not None and pt.merge(entry[0]):
                changed = True
            if entry[1] is not None:
                ht.merge(entry[1])
        if changed:
            self._ct[tid] = None

    def process(self, event: Event) -> None:
        # Per-event prologue, inlined from _thread_prologue (which
        # process_foreign still calls): the deferred N_t bump must advance
        # at the same event on both paths, so keep the copies in sync.
        self._processed_events += 1
        tid = event.tid
        if tid is None or not self._trust_tids:
            tid = self._registry.intern(event.thread)
        nt_list = self._nt
        if tid >= len(nt_list) or nt_list[tid] == 0:
            self._ensure_thread(tid, event.thread)
        prev = self._prev_release
        if prev[tid]:
            # The previous event of this thread was a release: bump N_t.
            nt = nt_list[tid] + 1
            nt_list[tid] = nt
            self._ht[tid].assign(tid, nt)
            self._ct[tid] = None
            prev[tid] = False
        if self._barrier_waiting:
            waiting = self._barrier_waiting.get(tid)
            if waiting:
                self._join_open_barriers(tid, waiting)
        etype = event.etype
        if etype is EventType.READ:
            self._read(event, tid)
        elif etype is EventType.WRITE:
            self._write(event, tid)
        elif etype is EventType.ACQUIRE:
            self._acquire(event, tid)
        elif etype is EventType.RELEASE:
            self._release(event, tid)
            self._prev_release[tid] = True
        elif etype is EventType.FORK:
            self._fork(event, tid)
        elif etype is EventType.JOIN:
            self._join(event, tid)
        elif etype is EventType.RACQ_R:
            self._racq_r(event, tid)
        elif etype is EventType.RACQ_W:
            self._racq_w(event, tid)
        elif etype is EventType.RREL:
            self._rrel(event, tid)
            self._prev_release[tid] = True
        elif etype is EventType.BARRIER:
            self._barrier(event, tid)
            self._prev_release[tid] = True
        elif etype is EventType.WAIT:
            self._wait(event, tid)
        elif etype is EventType.NOTIFY:
            self._notify(event, tid)
            self._prev_release[tid] = True
        # BEGIN / END need no clock work.

    # ------------------------------------------------------------------ #
    # Algorithm 1 procedures
    # ------------------------------------------------------------------ #

    def _acquire(self, event: Event, tid: int) -> None:
        lock = event.target
        state = self._locks.get(lock)
        if state is None:
            state = self._locks[lock] = _LockState()
        # Overlapping critical sections break the release chain the
        # Rule (a) fast path relies on; fall back to the full walk then.
        if state.holder is not None:
            state.tainted = True
        state.holder = tid
        # Lines 1-2: receive the HB / WCP knowledge of the last release of l.
        hl = state.hl
        if hl is not None:
            self._ht[tid].merge(hl)
        ct_cache = self._ct
        pl = state.pl
        if pl is not None and self._pt[tid].merge(pl):
            ct_cache[tid] = None
        # Line 3: advertise this acquire's timestamp by opening a log entry
        # (the pseudocode appends to every other thread's Acq queue; the
        # shared log defers that fan-out to the consumers' cursors).  The
        # acquire epoch arms the consumers' O(1) gate unless a fork/join
        # already leaked a snapshot of this block (see _LockState.log).
        nt = self._nt[tid]
        ct = ct_cache[tid]
        if ct is None:
            ct = ct_cache[tid] = self._pt[tid].copy().assign(tid, nt)
        log = state.log
        state.open_entry[tid] = state.base + len(log)
        log.append([ct, None, tid, nt if self._leak[tid] != nt else None])
        if self._track_queue_stats:
            # Inlined _bump_queue_total(_audience_size(...)).
            if self._effective_prune:
                audience = state.releasers
                delta = len(audience) - (1 if tid in audience else 0)
            else:
                delta = len(self._thread_names) - 1
            total = self._queue_total + delta
            self._queue_total = total
            if total > self._max_queue_total:
                self._max_queue_total = total
        # Track the opening of the critical section for R/W collection.
        self._open_sections[tid].append((lock, set(), set(), state))

    def _release(self, event: Event, tid: int) -> None:
        lock = event.target
        state = self._locks.get(lock)
        if state is None:
            state = self._locks[lock] = _LockState()
        if state.holder == tid:
            state.holder = None
        else:
            state.tainted = True
        pt = self._pt[tid]
        nt = self._nt[tid]
        ct_cache = self._ct

        # Lines 4-6: apply Rule (b) for every earlier critical section of
        # this lock (by another thread) whose acquire is WCP-ordered before
        # this release.  The cursor is this thread's FIFO position in the
        # shared log; own sections are invisible to it.  ``ct`` is hoisted
        # out of the walk and rebuilt only when a join actually grew P_t.
        #
        # On chain-clean locks the consumed release times are HB-ordered
        # (see :class:`_RuleACell`), so instead of merging each one we keep
        # only the latest (``pending``, which dominates the rest) and merge
        # it when the walk ends -- or mid-walk when an acquire comparison
        # fails, since the deferred knowledge may be exactly what makes the
        # next entry consumable (the retry keeps the walk equivalent to the
        # eager pseudocode).  Tainted locks take the eager path.
        log = state.log
        base = state.base
        cursor = state.cursor.get(tid, 0)
        walk_allowed = True
        if cursor < base:
            # The thread's cursor lags the log's first retained entry:
            # either pruning established it can never read the gap (batch
            # census; advance freely), or the stream-mode heuristic
            # evicted entries it might still need, in which case it must
            # first consume the whole evicted region via the recovery
            # summary -- or not walk at all (FIFO order), retrying at its
            # next release once its clocks have grown.
            if self._consume_evicted(state, tid, pt):
                cursor = base
            else:
                walk_allowed = False
        if walk_allowed and cursor - base < len(log):
            # The walk never appends to the log, so a one-pass iterator
            # (O(1) steps on the deque) replaces repeated O(k) indexing;
            # the cached C_t is rebuilt in place only when P_t grew.
            ct = ct_cache[tid]
            if ct is None:
                ct = ct_cache[tid] = pt.copy().assign(tid, nt)
            # Epoch gates compare one component; on the dense backend the
            # raw buffer is indexed directly instead of bouncing through
            # clock.get per entry.
            ct_times = ct._times if type(ct) is DenseClock else None
            nct = len(ct_times) if ct_times is not None else 0
            consumed = 0
            if not state.tainted:
                pending = None
                for entry in islice(log, cursor - base, None):
                    owner = entry[2]
                    if owner == tid:
                        cursor += 1
                        continue
                    gate = entry[3]
                    if gate is None:
                        ordered = entry[0] <= ct
                    elif ct_times is not None:
                        ordered = owner < nct and gate <= ct_times[owner]
                    else:
                        ordered = gate <= ct.get(owner)
                    if not ordered:
                        if pending is None:
                            break
                        if pt.merge(pending):
                            ct = ct_cache[tid] = pt.copy().assign(tid, nt)
                            if ct_times is not None:
                                ct_times = ct._times
                                nct = len(ct_times)
                        pending = None
                        if gate is None:
                            ordered = entry[0] <= ct
                        elif ct_times is not None:
                            ordered = owner < nct and gate <= ct_times[owner]
                        else:
                            ordered = gate <= ct.get(owner)
                        if not ordered:
                            break
                    release_time = entry[1]
                    if release_time is None:
                        # The earlier critical section is still open (only
                        # possible on malformed, e.g. windowed, traces).
                        break
                    pending = release_time
                    consumed += 1
                    cursor += 1
                if pending is not None and pt.merge(pending):
                    ct_cache[tid] = None
            else:
                for entry in islice(log, cursor - base, None):
                    owner = entry[2]
                    if owner == tid:
                        cursor += 1
                        continue
                    gate = entry[3]
                    if gate is None:
                        ordered = entry[0] <= ct
                    elif ct_times is not None:
                        ordered = owner < nct and gate <= ct_times[owner]
                    else:
                        ordered = gate <= ct.get(owner)
                    if not ordered:
                        break
                    release_time = entry[1]
                    if release_time is None:
                        break
                    if pt.merge(release_time):
                        ct = ct_cache[tid] = pt.copy().assign(tid, nt)
                        if ct_times is not None:
                            ct_times = ct._times
                            nct = len(ct_times)
                    consumed += 1
                    cursor += 1
            if consumed and self._track_queue_stats:
                # A negative delta can never raise the max: plain decrement.
                self._queue_total -= 2 * consumed
        state.cursor[tid] = cursor

        # Close the critical section and fetch its accessed variables.
        reads: Optional[Set[str]] = None
        writes: Optional[Set[str]] = None
        stack = self._open_sections[tid]
        if stack:
            if stack[-1][0] == lock:
                _, reads, writes, _ = stack.pop()
            else:
                # Non-nested release (only on unvalidated traces): best effort.
                for position in range(len(stack) - 1, -1, -1):
                    if stack[position][0] == lock:
                        _, reads, writes, _ = stack.pop(position)
                        break

        # One frozen snapshot of this release's HB time serves the
        # Rule (a) cells, the per-lock ``H_l`` and the log entry -- every
        # consumer only ever reads it.
        release_snapshot = self._ht[tid].copy()
        # Lines 7-8: remember this release's HB time for Rule (a).
        if reads:
            per_lock = state.lr
            publish = self._join_release_time
            for variable in reads:
                cell = per_lock.get(variable)
                if cell is None:
                    cell = per_lock[variable] = _RuleACell()
                publish(cell, tid, release_snapshot)
        if writes:
            per_lock = state.lw
            publish = self._join_release_time
            for variable in writes:
                cell = per_lock.get(variable)
                if cell is None:
                    cell = per_lock[variable] = _RuleACell()
                publish(cell, tid, release_snapshot)

        # Lines 9-10: per-lock clocks now describe this (latest) release,
        # and the log entry closes with the same HB time.
        state.hl = release_snapshot
        state.pl = pt.copy()
        open_index = state.open_entry.pop(tid, None)
        if open_index is not None and open_index >= state.base:
            log[open_index - state.base][1] = release_snapshot
        if self._track_queue_stats:
            # Inlined _bump_queue_total(_audience_size(...)).
            if self._effective_prune:
                audience = state.releasers
                delta = len(audience) - (1 if tid in audience else 0)
            else:
                delta = len(self._thread_names) - 1
            total = self._queue_total + delta
            self._queue_total = total
            if total > self._max_queue_total:
                self._max_queue_total = total

        if self._effective_prune:
            self._reclaim(state)
        elif self._quiesce_reclaim:
            state.releasers.add(tid)
            if len(state.log) >= self._QUIESCE_LOG_THRESHOLD:
                self._reclaim_quiescent(state)

    def _audience_size(self, state: _LockState, tid: int) -> int:
        """Number of pseudocode queues this entry would be appended to.

        Only used for the Table-1 queue statistics: with pruning, queues
        exist for threads that release the lock; otherwise for every
        known thread (minus the owner in both cases).
        """
        if self._effective_prune:
            audience = state.releasers
            size = len(audience)
            return size - 1 if tid in audience else size
        # The owner is always initialised, hence always counted.
        return len(self._thread_names) - 1

    def _reclaim(self, state: _LockState) -> None:
        """Drop closed log entries that every possible consumer has passed.

        Consumers of an entry are the threads that release the lock other
        than the entry's owner; with the releaser census available (pruned
        mode) an entry whose consumers' cursors have all moved past it can
        never be read again.
        """
        log = state.log
        if not log or log[0][1] is None:
            return
        base = state.base
        cursor_at = state.cursor.get
        # O(1) fast-out: the consumer that blocked the previous scan still
        # blocks this one unless its cursor advanced past the base or the
        # front entry is now its own.
        blocker = state.reclaim_blocker
        if (
            blocker is not None
            and blocker != log[0][2]
            and cursor_at(blocker, 0) <= base
        ):
            return
        # One scan finds the two smallest consumer cursors (and their
        # holders); each pop then checks its owner-adjusted bound in O(1)
        # instead of rescanning every releaser.
        min1 = min2 = 0
        arg1 = arg2 = None
        for consumer in state.releasers:
            c = cursor_at(consumer, 0)
            if arg1 is None or c < min1:
                min2 = min1
                arg2 = arg1
                min1 = c
                arg1 = consumer
            elif arg2 is None or c < min2:
                min2 = c
                arg2 = consumer
        while log:
            entry = log[0]
            if entry[1] is None:
                break
            if entry[2] == arg1:
                bound = min2
                holder = arg2
            else:
                bound = min1
                holder = arg1
            if holder is not None and bound <= base:
                state.reclaim_blocker = holder
                break
            log.popleft()
            base += 1
        state.base = base

    def _reclaim_quiescent(self, state: _LockState) -> None:
        """Stream-mode log reclamation by epoch-based thread quiescence.

        Without the whole-trace releaser census, an entry's future
        consumers are unknowable; the heuristic drops a closed front entry
        (owner ``o``, acquire clock ``A``, release HB-time ``R``) once
        every other currently-known thread ``t`` satisfies one of:

        * ``t`` has already walked past the entry (its cursor is beyond);
        * ``t`` has never released (nor currently holds) this lock --
          thread-locality: it is assumed to keep away from it;
        * consuming the entry would provably be a no-op forever:
          ``A <= C_t`` already holds (the Rule (b) gate only opens wider as
          ``C_t`` grows) and ``R <= P_t`` (the merge adds nothing, and
          ``R`` is fixed while ``P_t`` only grows).  The O(T) comparisons
          are pre-filtered by the O(1) owner-epoch check
          ``A(o) <= P_t(o)``, which dismisses most blocked entries without
          touching a full clock.

        Evicted entries are not forgotten: their acquire clocks and
        release times are folded into per-owner joins (the *recovery
        summary*, ``evicted_acq`` / ``evicted_rel``), through which a
        thread whose assumed quiescence turns out wrong -- it enters the
        lock's critical sections after evictions -- still consumes the
        evicted region (see :meth:`_consume_evicted`).  The remaining
        inexactness is strictly narrower: a late consumer that could only
        ever consume a *strict prefix* of the evicted region loses those
        merges (clocks can only get smaller, so in adversarial traces
        this may surface extra race reports, never hide any ordering that
        batch mode would miss).
        """
        log = state.log
        base = state.base
        cursor = state.cursor
        releasers = state.releasers
        open_entry = state.open_entry
        reclaimed = 0
        while log:
            entry = log[0]
            release_time = entry[1]
            if release_time is None:
                break
            acq_clock = entry[0]
            owner = entry[2]
            acq_owner_time = acq_clock.get(owner)
            blocked = False
            for tid, nt in enumerate(self._nt):
                if nt == 0 or tid == owner:
                    continue
                if cursor.get(tid, 0) > base:
                    continue
                if tid not in releasers and tid not in open_entry:
                    continue
                pt = self._pt[tid]
                if acq_owner_time > pt.get(owner):
                    blocked = True
                    break
                if not (acq_clock <= self._clock_c(tid) and release_time <= pt):
                    blocked = True
                    break
            if blocked:
                break
            # Fold the entry into the recovery summary before dropping it.
            acq_joins = state.evicted_acq
            if acq_joins is None:
                acq_joins = state.evicted_acq = {}
                state.evicted_rel = {}
            existing = acq_joins.get(owner)
            if existing is None:
                acq_joins[owner] = acq_clock.copy()
                state.evicted_rel[owner] = release_time.copy()
            else:
                existing.merge(acq_clock)
                state.evicted_rel[owner].merge(release_time)
            log.popleft()
            base += 1
            reclaimed += 1
        if reclaimed:
            state.base = base
            self._stream_reclaimed += reclaimed

    def _consume_evicted(self, state: _LockState, tid: int, pt) -> bool:
        """Consume the evicted log region through the recovery summary.

        Returns True when the thread may advance its cursor to the log
        base: either nothing heuristic was evicted (batch pruning already
        proved the gap unreadable), or every foreign evicted acquire is
        below the thread's current WCP time -- in which case the original
        walk would have consumed every evicted entry (gates only open
        wider as ``C_t`` grows), so merging the per-owner release joins is
        *exactly* the original effect.  Otherwise the caller must skip the
        live-log walk (FIFO) and retry at the thread's next release.
        """
        acq_joins = state.evicted_acq
        if acq_joins is None:
            return True
        ct = self._clock_c(tid)
        for owner, acq_join in acq_joins.items():
            if owner != tid and not acq_join <= ct:
                return False
        changed = False
        for owner, rel_join in state.evicted_rel.items():
            if owner != tid and pt.merge(rel_join):
                changed = True
        if changed:
            self._ct[tid] = None
        return True

    @staticmethod
    def _join_release_time(cell: _RuleACell, tid: int, frozen_time) -> None:
        """Publish ``frozen_time`` as ``tid``'s latest release HB-time.

        ``H_t`` is monotone, so the per-thread join of a thread's release
        times always equals its *latest* release time: the join collapses
        to replacement.  The caller passes a frozen snapshot (shared
        across every cell this release publishes to) that is never
        mutated afterwards.
        """
        cell.by_tid[tid] = frozen_time
        # This release is the lock's most recent, so (on chain-clean locks)
        # its entry now dominates the whole cell.
        top_tid = cell.top_tid
        if top_tid != tid:
            cell.second_tid = top_tid
            cell.second = cell.top
            cell.top_tid = tid
        cell.top = frozen_time
        # Invalidate every thread's visit memo (see _join_rule_a).
        cell.version += 1

    def _join_rule_a(self, target, cell: _RuleACell, tid: int, clean: bool) -> bool:
        """Join into ``target`` the Rule (a) release times relevant to ``tid``.

        ``clean`` selects the O(1) chain fast path (see :class:`_RuleACell`);
        returns True when ``target`` actually grew (so the caller can
        invalidate its cached ``C_t``).

        The version memo short-circuits repeat visits: ``target`` is always
        the accessing thread's ``P_t`` (which only grows in place), so once
        this thread has joined the cell at some version, revisiting the
        unchanged cell is a guaranteed no-op -- for the chain fast path
        *and* for the tainted full walk, since an unchanged version means
        no entry was added or grown.
        """
        seen = cell.seen
        version = cell.version
        if seen.get(tid) == version:
            return False
        if clean:
            if self._strict_pseudocode or cell.top_tid != tid:
                relevant = cell.top
            else:
                relevant = cell.second
            changed = relevant is not None and target.merge(relevant)
        else:
            changed = False
            if self._strict_pseudocode:
                for clock in cell.by_tid.values():
                    if target.merge(clock):
                        changed = True
            else:
                for releasing_tid, clock in cell.by_tid.items():
                    if releasing_tid != tid and target.merge(clock):
                        changed = True
        seen[tid] = version
        return changed

    def _read(self, event: Event, tid: int) -> None:
        sections = self._open_sections[tid]
        if sections:
            self._read_rule_a(event.target, tid, sections)
        read_held = self._read_held[tid]
        if read_held:
            self._read_held_rule_a(event.target, tid, read_held, False)
        # Race check, inlined from _check_access (the per-access hot path).
        ct = self._ct[tid]
        if ct is None:
            ct = self._ct[tid] = self._pt[tid].copy().assign(tid, self._nt[tid])
        variables = self._history._variables
        history = variables.get(event.target)
        if history is None:
            history = variables[event.target] = VariableHistory()
        racy = history.observe_read(
            event, ct, tid, self._leak[tid] != self._nt[tid]
        )
        if racy:
            report = self.report
            for earlier in racy:
                report.add(earlier, event)

    def _read_rule_a(self, variable: str, tid: int, sections: list) -> None:
        # Line 11: Rule (a) -- order this read after every release of an
        # enclosing lock whose critical section wrote the same variable.
        # The access is also noted in each open section in the same walk
        # (no per-access held-locks list is materialised).
        pt = self._pt[tid]
        changed = False
        for _lock, section_reads, _section_writes, state in sections:
            cell = state.lw.get(variable) if state.lw else None
            if cell is not None and self._join_rule_a(
                pt, cell, tid, not state.tainted
            ):
                changed = True
            # Writes of past *read* sections conflict too; their releases
            # are mutually unordered, so never take the chain fast path.
            # (The read cells only exist on rwlock traces -- the truthiness
            # probe skips the dict lookup entirely for plain mutexes.)
            cell = state.read_lw.get(variable) if state.read_lw else None
            if cell is not None and self._join_rule_a(pt, cell, tid, False):
                changed = True
            section_reads.add(variable)
        if changed:
            self._ct[tid] = None

    def _write(self, event: Event, tid: int) -> None:
        sections = self._open_sections[tid]
        if sections:
            self._write_rule_a(event.target, tid, sections)
        read_held = self._read_held[tid]
        if read_held:
            self._read_held_rule_a(event.target, tid, read_held, True)
        # Race check, inlined from _check_access (the per-access hot path).
        ct = self._ct[tid]
        if ct is None:
            ct = self._ct[tid] = self._pt[tid].copy().assign(tid, self._nt[tid])
        variables = self._history._variables
        history = variables.get(event.target)
        if history is None:
            history = variables[event.target] = VariableHistory()
        racy = history.observe_write(
            event, ct, tid, self._leak[tid] != self._nt[tid]
        )
        if racy:
            report = self.report
            for earlier in racy:
                report.add(earlier, event)

    def _write_rule_a(self, variable: str, tid: int, sections: list) -> None:
        # Line 12: Rule (a) for writes -- conflicting accesses are both
        # the reads and the writes of the enclosing critical sections.
        pt = self._pt[tid]
        changed = False
        for _lock, _section_reads, section_writes, state in sections:
            clean = not state.tainted
            cell = state.lr.get(variable) if state.lr else None
            if cell is not None and self._join_rule_a(pt, cell, tid, clean):
                changed = True
            cell = state.lw.get(variable) if state.lw else None
            if cell is not None and self._join_rule_a(pt, cell, tid, clean):
                changed = True
            # Reads and writes of past *read* sections conflict with this
            # write; read releases are mutually unordered -- full walk.
            # (Read cells only exist on rwlock traces: truthiness probe.)
            cell = state.read_lr.get(variable) if state.read_lr else None
            if cell is not None and self._join_rule_a(pt, cell, tid, False):
                changed = True
            cell = state.read_lw.get(variable) if state.read_lw else None
            if cell is not None and self._join_rule_a(pt, cell, tid, False):
                changed = True
            section_writes.add(variable)
        if changed:
            self._ct[tid] = None

    def _read_held_rule_a(
        self, variable: str, tid: int, read_held: Set[str], is_write: bool
    ) -> None:
        # Rule (a) for read-mode rwlock sections: a read section excludes
        # *write* sections, so this access is ordered after every
        # write-mode release of a read-held lock whose section accessed
        # the same variable conflictingly.  Only the exclusive-release
        # cells are consumed (read sections do not order each other); the
        # access is recorded in the section's read/write sets so the
        # read-mode ``rrel`` can publish it into the read cells consumed
        # by later exclusive sections.
        pt = self._pt[tid]
        changed = False
        for lock, section_sets in read_held.items():
            state = self._lock_state(lock)
            clean = not state.tainted
            if is_write:
                cell = state.lr.get(variable)
                if cell is not None and self._join_rule_a(
                    pt, cell, tid, clean
                ):
                    changed = True
                section_sets[1].add(variable)
            else:
                section_sets[0].add(variable)
            cell = state.lw.get(variable)
            if cell is not None and self._join_rule_a(pt, cell, tid, clean):
                changed = True
        if changed:
            self._ct[tid] = None

    def process_foreign(self, event: Event) -> None:
        """Apply an access's clock effects without race-checking it.

        The sharded engine calls this for in-critical-section accesses
        whose variable belongs to another shard: the Rule (a) joins and the
        section read/write sets must be applied on *every* shard (they feed
        the releasing thread's ``P_t`` and the per-lock Rule (a) cells, so
        skipping them would leave this shard's clocks behind the full
        run's), while the access history and race check stay exclusively
        with the owner shard.  The thread-order prologue (the deferred
        ``N_t`` bump) is the same code :meth:`process` runs.
        """
        tid = self._thread_prologue(event)
        sections = self._open_sections[tid]
        read_held = self._read_held[tid]
        etype = event.etype
        if etype is EventType.READ:
            if sections:
                self._read_rule_a(event.target, tid, sections)
            if read_held:
                self._read_held_rule_a(event.target, tid, read_held, False)
        elif etype is EventType.WRITE:
            if sections:
                self._write_rule_a(event.target, tid, sections)
            if read_held:
                self._read_held_rule_a(event.target, tid, read_held, True)

    def _fork(self, event: Event, tid: int) -> None:
        child_name = event.target
        child = self._registry.intern(child_name)
        self._ensure_thread(child, child_name)
        parent_clock = self._clock_c(tid)
        if self._pt[child].merge(parent_clock):
            self._ct[child] = None
        self._ht[child].merge(self._ht[tid])
        # Keep the child's own component pinned to its local clock.
        self._ht[child].assign(child, self._nt[child])
        # The parent's mid-block C/H escaped: epoch checks for accesses in
        # the remainder of this block must take the full-join path.
        self._leak[tid] = self._nt[tid]

    def _join(self, event: Event, tid: int) -> None:
        child_name = event.target
        child = self._registry.intern(child_name)
        self._ensure_thread(child, child_name)
        if self._pt[tid].merge(self._clock_c(child)):
            self._ct[tid] = None
        self._ht[tid].merge(self._ht[child])
        self._ht[tid].assign(tid, self._nt[tid])
        # The child's mid-block C/H escaped into the parent.
        self._leak[child] = self._nt[child]

    # ------------------------------------------------------------------ #
    # Extended vocabulary: rwlocks, barriers, wait/notify
    # ------------------------------------------------------------------ #

    def _racq_r(self, event: Event, tid: int) -> None:
        """Read-acquire: ordered after the last *write* release only.

        Read sections do not order each other, so a read-acquire receives
        the lock's ``H_l``/``P_l`` (describing the last write-mode or
        mutex release) but never the read accumulators, opens no Rule (b)
        log entry and no Rule (a) section.  Accesses inside the section
        still *consume* the lock's Rule (a) cells (see
        :meth:`_read_held_rule_a`): a read section excludes write
        sections, so it must pick up their conflicting-release edges --
        it just never publishes any of its own.
        """
        state = self._lock_state(event.target)
        hl = state.hl
        if hl is not None:
            self._ht[tid].merge(hl)
        pl = state.pl
        if pl is not None and self._pt[tid].merge(pl):
            self._ct[tid] = None
        self._read_held[tid][event.target] = [set(), set()]

    def _racq_w(self, event: Event, tid: int) -> None:
        """Write-acquire: a mutex acquire that also waits for all readers.

        Runs the full acquire procedure (Rule (b) log entry, Rule (a)
        section) and additionally joins the accumulated read-release
        clocks, then clears the accumulators: later sections are ordered
        after those readers transitively through this writer's release.
        """
        state = self._lock_state(event.target)
        read_hl = state.read_hl
        if read_hl is not None:
            self._ht[tid].merge(read_hl)
        read_pl = state.read_pl
        if read_pl is not None and self._pt[tid].merge(read_pl):
            self._ct[tid] = None
        state.read_hl = None
        state.read_pl = None
        self._acquire(event, tid)

    def _rrel(self, event: Event, tid: int) -> None:
        """Reader/writer release: mode-resolved against this thread's state.

        Closing a write section is exactly a mutex release.  Closing a
        read section publishes the thread's ``H_t``/``P_t`` into the
        lock's read accumulators (consumed by the next write-acquire) --
        deliberately *not* into ``H_l``/``P_l``, so concurrent read
        sections stay unordered.
        """
        lock = event.target
        read_held = self._read_held[tid]
        section_sets = read_held.pop(lock, None)
        if section_sets is not None:
            state = self._lock_state(lock)
            ht = self._ht[tid]
            # Publish the section's accesses into the read cells: a later
            # conflicting access under an exclusive section of this lock
            # is Rule (a)-ordered after this release.
            reads, writes = section_sets
            snapshot = ht.copy() if (reads or writes) else None
            if reads:
                per_lock = state.read_lr
                for variable in reads:
                    cell = per_lock.get(variable)
                    if cell is None:
                        cell = per_lock[variable] = _RuleACell()
                    self._join_release_time(cell, tid, snapshot)
            if writes:
                per_lock = state.read_lw
                for variable in writes:
                    cell = per_lock.get(variable)
                    if cell is None:
                        cell = per_lock[variable] = _RuleACell()
                    self._join_release_time(cell, tid, snapshot)
            if state.read_hl is None:
                state.read_hl = ht.copy()
            else:
                state.read_hl.merge(ht)
            pt = self._pt[tid]
            if state.read_pl is None:
                state.read_pl = pt.copy()
            else:
                state.read_pl.merge(pt)
        else:
            self._release(event, tid)

    def _barrier(self, event: Event, tid: int) -> None:
        """Barrier arrival: all-to-all join at each generation.

        A generation's arrivals accumulate into a pair of join clocks; it
        *closes* when some participant arrives again, at which point every
        participant of the closed generation receives the accumulated
        join (the all-to-all edge), and a fresh generation starts with the
        repeat arriver as its first participant.  Arrivals also receive
        the accumulator of the open generation so far, and while the
        generation stays open each participant keeps re-joining the
        accumulator at its subsequent events (a real barrier would have
        blocked it until every recorded arrival happened) -- together
        giving the partial order of a sequentially-consistent barrier
        implementation without knowing the party count.

        Barriers are replicated to every shard and the close fires at the
        same stream position everywhere, so sharded runs stay
        byte-identical to serial ones.
        """
        entry = self._barriers.get(event.target)
        if entry is None:
            entry = self._barriers[event.target] = [None, None, set(), 0]
        participants = entry[2]
        if tid in participants:
            # Generation complete: deliver the all-to-all join.
            acc_p, acc_h = entry[0], entry[1]
            for member in participants:
                if self._pt[member].merge(acc_p):
                    self._ct[member] = None
                self._ht[member].merge(acc_h)
                waiting = self._barrier_waiting.get(member)
                if waiting is not None:
                    waiting.pop(event.target, None)
            entry[0] = None
            entry[1] = None
            participants = entry[2] = set()
        acc_p, acc_h = entry[0], entry[1]
        if acc_h is not None:
            self._ht[tid].merge(acc_h)
        if acc_p is not None and self._pt[tid].merge(acc_p):
            self._ct[tid] = None
        ct = self._clock_c(tid)
        if entry[0] is None:
            entry[0] = ct.copy()
            entry[1] = self._ht[tid].copy()
        else:
            entry[0].merge(ct)
            entry[1].merge(self._ht[tid])
        participants.add(tid)
        entry[3] += 1
        # The arriver just merged the whole accumulator, so it has seen
        # the version its own contribution produced.
        self._barrier_waiting.setdefault(tid, {})[event.target] = entry[3]

    def _wait(self, event: Event, tid: int) -> None:
        """Wake-side wait: re-acquire the monitor plus the notify edge.

        Producers desugar ``wait(m)`` into ``rel(m)`` at wait-start and
        ``wait(m)`` at wake (the RVPredict convention), so this event
        runs the full acquire procedure and additionally joins the
        accumulated notify clocks -- a *hard* edge: the waiter provably
        resumed because of a notify, and ``C_t`` (not just ``P_l``) of
        every notifier is ordered before everything after the wake.
        """
        state = self._lock_state(event.target)
        notify_h = state.notify_h
        if notify_h is not None:
            self._ht[tid].merge(notify_h)
        notify_p = state.notify_p
        if notify_p is not None and self._pt[tid].merge(notify_p):
            self._ct[tid] = None
        self._acquire(event, tid)

    def _notify(self, event: Event, tid: int) -> None:
        """Publish ``C_t``/``H_t`` into the monitor's notify accumulators.

        The accumulators are never cleared (notifyAll semantics: every
        later waiter on the monitor is ordered after every notify), and a
        notify is release-like -- the caller marks the deferred ``N_t``
        bump, keeping access epochs exact.
        """
        state = self._lock_state(event.target)
        ct = self._clock_c(tid)
        if state.notify_p is None:
            state.notify_p = ct.copy()
            state.notify_h = self._ht[tid].copy()
        else:
            state.notify_p.merge(ct)
            state.notify_h.merge(self._ht[tid])

    # ------------------------------------------------------------------ #
    # Race checking
    # ------------------------------------------------------------------ #

    def _check_access(self, event: Event, tid: int) -> None:
        self._history.observe(
            event,
            self._clock_c(tid),
            self.report,
            exact=self._leak[tid] != self._nt[tid],
            key=tid,
            frozen=True,
        )

    def finish(self) -> None:
        if self._track_queue_stats:
            events = max(1, self._processed_events)
            self.report.stats["max_queue_total"] = float(self._max_queue_total)
            self.report.stats["max_queue_fraction"] = (
                self._max_queue_total / float(events)
            )
        if self._quiesce_reclaim:
            self.report.stats["stream_log_reclaimed"] = float(
                self._stream_reclaimed
            )

    def sync_clock_state(self) -> Dict[object, bytes]:
        """Serialized per-thread WCP times ``C_t`` (shard-boundary protocol).

        Deferred ``N_t`` bumps are applied to the exported copies so that
        shards which saw a thread's release but not (yet) its next routed
        access still report the same state.
        """
        from repro.vectorclock.dense import serialize_clock

        state: Dict[object, bytes] = {}
        name_of = self._registry.name_of
        for tid, nt in enumerate(self._nt):
            if nt == 0:
                continue
            if self._prev_release[tid]:
                nt += 1
            state[name_of(tid)] = serialize_clock(
                self._pt[tid].copy().assign(tid, nt)
            )
        return state

    # ------------------------------------------------------------------ #
    # Snapshot protocol (checkpoint/resume, sharded worker restore)
    # ------------------------------------------------------------------ #

    def snapshot_config(self) -> Dict[str, object]:
        return {
            "track_queue_stats": self._track_queue_stats,
            "strict_pseudocode": self._strict_pseudocode,
            "prune_queues": self._prune_queues,
            "stream_reclaim": self._stream_reclaim,
            "clock_backend": self.clock_backend,
        }

    @staticmethod
    def _cell_state(cell: _RuleACell) -> Dict[str, object]:
        return {
            "by_tid": dict(cell.by_tid),
            "top_tid": cell.top_tid,
            "second_tid": cell.second_tid,
            "version": cell.version,
            "seen": dict(cell.seen),
        }

    @staticmethod
    def _cell_from_state(state: Dict[str, object]) -> _RuleACell:
        cell = _RuleACell()
        cell.by_tid = dict(state["by_tid"])
        cell.top_tid = state["top_tid"]
        cell.second_tid = state["second_tid"]
        # top/second alias the by_tid entries, so they are re-linked
        # rather than stored twice.
        cell.top = cell.by_tid.get(cell.top_tid)
        cell.second = cell.by_tid.get(cell.second_tid)
        cell.version = state["version"]
        cell.seen = dict(state["seen"])
        return cell

    def state_snapshot(self) -> bytes:
        report = self.report  # raises before reset()
        locks: Dict[str, object] = {}
        for lock, state in self._locks.items():
            locks[lock] = {
                # The acquire epoch (entry[3]) is a pure accelerator and
                # is rebuilt as "unknown" on restore; stripping it keeps
                # the wire format stable across detector versions.
                "log": [(entry[0], entry[1], entry[2]) for entry in state.log],
                "base": state.base,
                "cursor": dict(state.cursor),
                "open_entry": dict(state.open_entry),
                "pl": state.pl,
                "hl": state.hl,
                "holder": state.holder,
                "tainted": state.tainted,
                "releasers": state.releasers,
                "lr": {
                    variable: self._cell_state(cell)
                    for variable, cell in state.lr.items()
                },
                "lw": {
                    variable: self._cell_state(cell)
                    for variable, cell in state.lw.items()
                },
                "read_lr": {
                    variable: self._cell_state(cell)
                    for variable, cell in state.read_lr.items()
                },
                "read_lw": {
                    variable: self._cell_state(cell)
                    for variable, cell in state.read_lw.items()
                },
                "evicted_acq": state.evicted_acq,
                "evicted_rel": state.evicted_rel,
                "read_pl": state.read_pl,
                "read_hl": state.read_hl,
                "notify_p": state.notify_p,
                "notify_h": state.notify_h,
            }
        state_dict = {
            "names": self._registry.names(),
            "nt": list(self._nt),
            "pt": list(self._pt),
            "ht": list(self._ht),
            "prev_release": list(self._prev_release),
            "leak": list(self._leak),
            "open_sections": [
                None if sections is None else [
                    (lock, reads, writes)
                    for lock, reads, writes, _lock_state in sections
                ]
                for sections in self._open_sections
            ],
            "thread_names": list(self._thread_names),
            "read_held": [
                None if held is None else {
                    lock: (sets[0], sets[1])
                    for lock, sets in held.items()
                }
                for held in self._read_held
            ],
            "barriers": {
                barrier: (entry[0], entry[1], set(entry[2]), entry[3])
                for barrier, entry in self._barriers.items()
            },
            "barrier_waiting": {
                tid: dict(waiting)
                for tid, waiting in self._barrier_waiting.items()
                if waiting
            },
            "locks": locks,
            "history": self._history.state_dict(),
            "report": report.state_dict(),
            "counters": (
                self._queue_total,
                self._max_queue_total,
                self._processed_events,
                self._stream_reclaimed,
            ),
            "modes": (self._effective_prune, self._quiesce_reclaim),
        }
        return pack_state(
            type(self).__name__, self.snapshot_version,
            self.snapshot_config(), state_dict,
        )

    def restore_state(self, blob: bytes) -> None:
        if self._report is None:
            raise RuntimeError(
                "restore_state() requires reset() first (the reset binds "
                "the pass context and its shared thread registry)"
            )
        state = unpack_for(self).unpack(blob)
        adopt_registry_names(self._registry, state["names"])

        self._nt = list(state["nt"])
        self._pt = list(state["pt"])
        self._ht = list(state["ht"])
        self._ct = [None] * len(self._nt)
        self._prev_release = list(state["prev_release"])
        self._leak = list(state["leak"])
        self._thread_names = list(state["thread_names"])

        locks: Dict[str, _LockState] = {}
        for lock, entry in state["locks"].items():
            lock_state = _LockState()
            # Pad the stripped acquire-epoch field: None takes the full
            # Rule (b) comparison, which is verdict-identical.
            lock_state.log = deque(
                [item[0], item[1], item[2], None] for item in entry["log"]
            )
            lock_state.base = entry["base"]
            lock_state.cursor = dict(entry["cursor"])
            lock_state.open_entry = dict(entry["open_entry"])
            lock_state.pl = entry["pl"]
            lock_state.hl = entry["hl"]
            lock_state.holder = entry["holder"]
            lock_state.tainted = entry["tainted"]
            lock_state.releasers = set(entry["releasers"])
            lock_state.lr = {
                variable: self._cell_from_state(cell)
                for variable, cell in entry["lr"].items()
            }
            lock_state.lw = {
                variable: self._cell_from_state(cell)
                for variable, cell in entry["lw"].items()
            }
            lock_state.read_lr = {
                variable: self._cell_from_state(cell)
                for variable, cell in entry["read_lr"].items()
            }
            lock_state.read_lw = {
                variable: self._cell_from_state(cell)
                for variable, cell in entry["read_lw"].items()
            }
            lock_state.evicted_acq = entry["evicted_acq"]
            lock_state.evicted_rel = entry["evicted_rel"]
            lock_state.read_pl = entry["read_pl"]
            lock_state.read_hl = entry["read_hl"]
            lock_state.notify_p = entry["notify_p"]
            lock_state.notify_h = entry["notify_h"]
            locks[lock] = lock_state
        self._locks = locks
        self._read_held = [
            None if held is None else {
                lock: [set(reads), set(writes)]
                for lock, (reads, writes) in held.items()
            }
            for held in state["read_held"]
        ]
        self._barriers = {
            barrier: [acc_p, acc_h, set(participants), version]
            for barrier, (acc_p, acc_h, participants, version)
            in state["barriers"].items()
        }
        self._barrier_waiting = {
            tid: dict(waiting)
            for tid, waiting in dict(state.get("barrier_waiting", {})).items()
        }

        # Re-link open sections to their (just rebuilt) lock states.
        self._open_sections = [
            None if sections is None else [
                (lock, set(reads), set(writes), self._lock_state(lock))
                for lock, reads, writes in sections
            ]
            for sections in state["open_sections"]
        ]

        self._history = AccessHistory.from_state(state["history"])
        self._report = RaceReport.from_state(state["report"])
        (
            self._queue_total,
            self._max_queue_total,
            self._processed_events,
            self._stream_reclaimed,
        ) = state["counters"]
        self._effective_prune, self._quiesce_reclaim = state["modes"]
        self.restore_pending = False

    # ------------------------------------------------------------------ #
    # Introspection helpers used by tests and the closure cross-check
    # ------------------------------------------------------------------ #

    def timestamps(self, trace: Trace) -> List[VectorClock]:
        """Run over ``trace`` and return the WCP timestamp ``C_e`` per event.

        Timestamps are converted to the public name-keyed
        :class:`VectorClock` representation regardless of the internal
        clock backend.  Used by tests to cross-validate against the
        explicit closure (Theorem 2: ``a <=_WCP b  iff  C_a <= C_b`` for
        ``a`` earlier than ``b``).
        """
        self.reset(trace)
        clocks: List[VectorClock] = []
        to_public = self._registry.to_public
        intern = self._registry.intern
        for event in trace:
            self.process(event)
            tid = event.tid
            if tid is None or not self._trust_tids:
                tid = intern(event.thread)
            clocks.append(to_public(self._clock_c(tid)))
        self.finish()
        return clocks
