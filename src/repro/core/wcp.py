"""Algorithm 1: the linear-time WCP vector-clock detector.

This is the paper's central algorithmic contribution (Section 3).  The
detector processes the trace in a single streaming pass and maintains:

``N_t``
    an integer local clock per thread, incremented just before processing
    an event whose thread-order predecessor was a release;
``P_t``
    the WCP-predecessor clock of thread ``t`` (the join of ``C_e`` over all
    events ``e`` WCP-before the last event of ``t``);
``H_t``
    the happens-before clock of thread ``t`` (component ``t`` always equals
    ``N_t``);
``P_l`` / ``H_l``
    per-lock copies of the WCP/HB clocks of the last release of ``l``;
``L^r_{l,x}`` / ``L^w_{l,x}``
    per lock and variable, the join of the HB times of all releases of
    ``l`` whose critical section read / wrote ``x`` (these implement
    Rule (a) of WCP);
``Acq_l(t)`` / ``Rel_l(t)``
    per lock and thread, FIFO queues holding the acquire timestamps and
    release HB-times of critical sections performed by *other* threads
    (these implement Rule (b)).

The pseudocode's per-(lock, thread) queues are represented here as one
shared per-lock **log** of critical sections (acquire timestamp, release
HB-time, owning thread) plus a per-(lock, thread) FIFO *cursor* into it.
The two are observationally identical on complete traces -- each thread's
queue is exactly the other-thread suffix of the log past its cursor --
but the log form has two advantages: appends are O(1) instead of O(T),
and a thread first observed *mid-stream* (the engine's live sources have
no thread census at reset time) still sees every earlier critical
section, which per-thread queues materialised at append time cannot
provide.  Consumed log entries are reclaimed when queue pruning is
active (see below).

The derived event timestamp is ``C_e = P_t[t := N_t]`` taken right after
processing ``e``.  Theorem 2 states ``a <=_WCP b  iff  C_a <= C_b`` (for
``a`` earlier than ``b``), so the race check is a per-variable clock
comparison (see :mod:`repro.core.history`).

Fork and join events are not part of the paper's formal model but are
emitted by real loggers; we treat them as inviolable program-order edges
(like thread order) by joining the parent's ``C`` into the child's ``P``
and ``H`` on fork, and symmetrically on join.

One deliberate deviation from the literal pseudocode: Definition 3's
Rule (a) requires the event in ``CS(r)`` to *conflict* with the later
access, and conflicting events must be from different threads.  The
pseudocode's ``L^r_{l,x}`` / ``L^w_{l,x}`` clocks join the HB times of all
releases -- including releases performed by the reading/writing thread
itself -- which can introduce orderings (and hence hide races) that the
definition does not impose.  We therefore keep those clocks per releasing
thread and skip the accessing thread's own contribution, which makes the
detector agree exactly with the closure oracle
(:class:`repro.core.closure.WCPClosure`); pass ``strict_pseudocode=True``
to reproduce the literal Algorithm 1 behaviour instead.

Complexity matches Theorem 3: ``O(N * (T^2 + L))`` time; space is linear in
the worst case due to the FIFO queues, and the detector records the maximum
total queue length so Table 1's column 11 can be reproduced.

One exact (semantics-preserving) optimisation is applied by default: log
entries are reclaimed once every thread that releases ``l`` somewhere in
the trace has consumed them (a thread that never releases the lock never
reads its cursor, so it cannot hold entries alive).  This changes the
memory profile dramatically on traces with thread-local locks (which
would otherwise accumulate entries forever).  The releaser census needs
the whole trace at :meth:`reset`; when fed from a stream
(``is_complete`` False) or with ``prune_queues=False`` the log is kept
in full, matching the pseudocode's worst-case linear space.

``report.stats["max_queue_total"]`` still reports the *pseudocode's*
queue occupancy (each critical section contributes one acquire and one
release entry per other-thread queue) so that Table 1's column 11 stays
comparable with the paper.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.core.detector import Detector
from repro.core.history import AccessHistory
from repro.trace.event import Event, EventType
from repro.trace.trace import Trace
from repro.vectorclock.clock import VectorClock


class WCPDetector(Detector):
    """Streaming WCP race detector (Algorithm 1).

    Parameters
    ----------
    track_queue_stats:
        When True (default) record the maximum total FIFO-queue length in
        ``report.stats["max_queue_total"]`` and the fraction of the trace
        length in ``report.stats["max_queue_fraction"]`` (Table 1, col 11).
    strict_pseudocode:
        When True, follow Algorithm 1 literally and let Rule (a) joins
        include releases performed by the accessing thread itself (see the
        module docstring).  Default False (agree with Definition 3).
    prune_queues:
        When True (default) reclaim critical-section log entries consumed
        by every releasing thread (exactly equivalent, far less memory).
        Requires the full trace at :meth:`reset`; automatically disabled
        when reset with a non-prescannable stream context.
    """

    name = "WCP"

    def __init__(
        self,
        track_queue_stats: bool = True,
        strict_pseudocode: bool = False,
        prune_queues: bool = True,
    ) -> None:
        super().__init__()
        self._track_queue_stats = track_queue_stats
        self._strict_pseudocode = strict_pseudocode
        self._prune_queues = prune_queues
        self._trace: Optional[Trace] = None

    # ------------------------------------------------------------------ #
    # State management
    # ------------------------------------------------------------------ #

    def reset(self, trace: Trace) -> None:
        self._trace = trace
        self._new_report(trace)
        self._threads: List[str] = trace.threads

        # Local clocks and thread clocks.
        self._nt: Dict[str, int] = {}
        self._pt: Dict[str, VectorClock] = {}
        self._ht: Dict[str, VectorClock] = {}
        self._prev_was_release: Dict[str, bool] = {}

        # Per-lock clocks.
        self._pl: Dict[str, VectorClock] = defaultdict(VectorClock.bottom)
        self._hl: Dict[str, VectorClock] = defaultdict(VectorClock.bottom)

        # Per (lock, variable) release-time joins for Rule (a), keyed by the
        # releasing thread so that an accessing thread can skip its own
        # releases (see the module docstring).
        self._lr: Dict[Tuple[str, str], Dict[str, VectorClock]] = defaultdict(dict)
        self._lw: Dict[Tuple[str, str], Dict[str, VectorClock]] = defaultdict(dict)

        # Rule (b) state: per-lock shared log of critical sections.  Each
        # entry is [acquire clock, release HB-time or None while open,
        # owning thread]; ``_cs_base`` is the absolute index of the log's
        # first retained entry (entries below it were reclaimed), and
        # ``_cursor[(lock, thread)]`` is the absolute index up to which
        # ``thread`` has consumed the log.
        self._cs_log: Dict[str, Deque[list]] = defaultdict(deque)
        self._cs_base: Dict[str, int] = defaultdict(int)
        self._cursor: Dict[Tuple[str, str], int] = {}
        # Absolute log index of each thread's currently-open section per lock.
        self._open_entry: Dict[Tuple[str, str], int] = {}

        # Per-thread stack of open critical sections:
        # (lock, variables read, variables written).
        self._open_sections: Dict[str, List[Tuple[str, Set[str], Set[str]]]] = (
            defaultdict(list)
        )

        self._history = AccessHistory()
        self._queue_total = 0
        self._max_queue_total = 0

        # Threads that release each lock somewhere in the trace: queues for
        # other threads are never read, so they need not be kept.  The
        # prescan needs the whole trace up front; when fed from a stream
        # (``is_complete`` False) fall back to keeping every queue.
        self._releasers: Dict[str, Set[str]] = defaultdict(set)
        self._effective_prune = (
            self._prune_queues and getattr(trace, "is_complete", True)
        )
        if self._effective_prune:
            for event in trace:
                if event.is_release():
                    self._releasers[event.lock].add(event.thread)

        for thread in self._threads:
            self._init_thread(thread)

    def _init_thread(self, thread: str) -> None:
        if thread in self._nt:
            return
        self._nt[thread] = 1
        self._pt[thread] = VectorClock.bottom()
        self._ht[thread] = VectorClock.single(thread, 1)
        self._prev_was_release[thread] = False
        if thread not in self._threads:
            self._threads.append(thread)

    # ------------------------------------------------------------------ #
    # Clock helpers
    # ------------------------------------------------------------------ #

    def _clock_c(self, thread: str) -> VectorClock:
        """Return ``C_t = P_t[t := N_t]`` as a fresh clock."""
        return self._pt[thread].copy().assign(thread, self._nt[thread])

    def _maybe_increment(self, thread: str) -> None:
        """Increment ``N_t`` iff the previous event of ``t`` was a release."""
        if self._prev_was_release.get(thread):
            self._nt[thread] += 1
            self._ht[thread].assign(thread, self._nt[thread])
            self._prev_was_release[thread] = False

    def _bump_queue_total(self, delta: int) -> None:
        if not self._track_queue_stats:
            return
        self._queue_total += delta
        if self._queue_total > self._max_queue_total:
            self._max_queue_total = self._queue_total

    # ------------------------------------------------------------------ #
    # Event dispatch
    # ------------------------------------------------------------------ #

    def process(self, event: Event) -> None:
        thread = event.thread
        self._init_thread(thread)
        self._maybe_increment(thread)

        etype = event.etype
        if etype is EventType.ACQUIRE:
            self._acquire(event)
        elif etype is EventType.RELEASE:
            self._release(event)
        elif etype is EventType.READ:
            self._read(event)
        elif etype is EventType.WRITE:
            self._write(event)
        elif etype is EventType.FORK:
            self._fork(event)
        elif etype is EventType.JOIN:
            self._join(event)
        # BEGIN / END need no clock work.

        self._prev_was_release[thread] = etype is EventType.RELEASE

    # ------------------------------------------------------------------ #
    # Algorithm 1 procedures
    # ------------------------------------------------------------------ #

    def _acquire(self, event: Event) -> None:
        thread, lock = event.thread, event.lock
        # Lines 1-2: receive the HB / WCP knowledge of the last release of l.
        self._ht[thread].join(self._hl[lock])
        self._pt[thread].join(self._pl[lock])
        # Line 3: advertise this acquire's timestamp by opening a log entry
        # (the pseudocode appends to every other thread's Acq queue; the
        # shared log defers that fan-out to the consumers' cursors).
        log = self._cs_log[lock]
        self._open_entry[(lock, thread)] = self._cs_base[lock] + len(log)
        log.append([self._clock_c(thread), None, thread])
        self._bump_queue_total(self._audience_size(lock, thread))
        # Track the opening of the critical section for R/W collection.
        self._open_sections[thread].append((lock, set(), set()))

    def _release(self, event: Event) -> None:
        thread, lock = event.thread, event.lock
        pt = self._pt[thread]

        # Lines 4-6: apply Rule (b) for every earlier critical section of
        # this lock (by another thread) whose acquire is WCP-ordered before
        # this release.  The cursor is this thread's FIFO position in the
        # shared log; own sections are invisible to it.
        log = self._cs_log[lock]
        base = self._cs_base[lock]
        cursor = max(self._cursor.get((lock, thread), 0), base)
        while cursor - base < len(log):
            acq_clock, release_time, owner = log[cursor - base]
            if owner == thread:
                cursor += 1
                continue
            if not (acq_clock <= self._clock_c(thread)):
                break
            if release_time is None:
                # The earlier critical section is still open (only possible
                # on malformed, e.g. windowed, traces).
                break
            pt.join(release_time)
            self._bump_queue_total(-2)
            cursor += 1
        self._cursor[(lock, thread)] = cursor

        # Close the critical section and fetch its accessed variables.
        reads: Set[str] = set()
        writes: Set[str] = set()
        stack = self._open_sections[thread]
        if stack and stack[-1][0] == lock:
            _, reads, writes = stack.pop()
        elif stack:
            # Non-nested release (only on unvalidated traces): best effort.
            for position in range(len(stack) - 1, -1, -1):
                if stack[position][0] == lock:
                    _, reads, writes = stack.pop(position)
                    break

        ht_full = self._ht[thread]
        # Lines 7-8: remember this release's HB time for Rule (a).
        for variable in reads:
            self._join_release_time(self._lr[(lock, variable)], thread, ht_full)
        for variable in writes:
            self._join_release_time(self._lw[(lock, variable)], thread, ht_full)

        # Line 9: per-lock clocks now describe this (latest) release.
        self._hl[lock] = ht_full.copy()
        self._pl[lock] = pt.copy()

        # Line 10: advertise this release's HB time (close the log entry).
        open_index = self._open_entry.pop((lock, thread), None)
        if open_index is not None and open_index >= self._cs_base[lock]:
            log[open_index - self._cs_base[lock]][1] = ht_full.copy()
        self._bump_queue_total(self._audience_size(lock, thread))

        if self._effective_prune:
            self._reclaim(lock)

    def _audience_size(self, lock: str, thread: str) -> int:
        """Number of pseudocode queues this entry would be appended to.

        Only used for the Table-1 queue statistics: with pruning, queues
        exist for threads that release the lock; otherwise for every
        known thread (minus the owner in both cases).
        """
        if self._effective_prune:
            audience = self._releasers.get(lock, ())
        else:
            audience = self._threads
        size = len(audience)
        return size - 1 if thread in audience else size

    def _reclaim(self, lock: str) -> None:
        """Drop closed log entries that every possible consumer has passed.

        Consumers of an entry are the threads that release ``lock`` other
        than the entry's owner; with the releaser census available (pruned
        mode) an entry whose consumers' cursors have all moved past it can
        never be read again.
        """
        log = self._cs_log[lock]
        base = self._cs_base[lock]
        releasers = self._releasers.get(lock, ())
        while log:
            _, release_time, owner = log[0]
            if release_time is None:
                break
            if any(
                consumer != owner
                and self._cursor.get((lock, consumer), 0) <= base
                for consumer in releasers
            ):
                break
            log.popleft()
            base += 1
        self._cs_base[lock] = base

    @staticmethod
    def _join_release_time(
        cell: Dict[str, VectorClock], thread: str, time: VectorClock
    ) -> None:
        existing = cell.get(thread)
        if existing is None:
            cell[thread] = time.copy()
        else:
            existing.join(time)

    def _join_rule_a(
        self, target: VectorClock, cell: Dict[str, VectorClock], thread: str
    ) -> None:
        """Join into ``target`` the Rule (a) release times relevant to ``thread``."""
        for releasing_thread, clock in cell.items():
            if releasing_thread == thread and not self._strict_pseudocode:
                continue
            target.join(clock)

    def _held_locks(self, thread: str) -> List[str]:
        return [section[0] for section in self._open_sections[thread]]

    def _note_access(self, thread: str, variable: str, is_write: bool) -> None:
        for _, reads, writes in self._open_sections[thread]:
            (writes if is_write else reads).add(variable)

    def _read(self, event: Event) -> None:
        thread, variable = event.thread, event.variable
        pt = self._pt[thread]
        # Line 11: Rule (a) -- order this read after every release of an
        # enclosing lock whose critical section wrote the same variable.
        for lock in self._held_locks(thread):
            self._join_rule_a(pt, self._lw[(lock, variable)], thread)
        self._note_access(thread, variable, is_write=False)
        self._check_access(event)

    def _write(self, event: Event) -> None:
        thread, variable = event.thread, event.variable
        pt = self._pt[thread]
        # Line 12: Rule (a) for writes -- conflicting accesses are both the
        # reads and the writes of the enclosing critical sections.
        for lock in self._held_locks(thread):
            self._join_rule_a(pt, self._lr[(lock, variable)], thread)
            self._join_rule_a(pt, self._lw[(lock, variable)], thread)
        self._note_access(thread, variable, is_write=True)
        self._check_access(event)

    def _fork(self, event: Event) -> None:
        parent, child = event.thread, event.other_thread
        self._init_thread(child)
        parent_clock = self._clock_c(parent)
        self._pt[child].join(parent_clock)
        self._ht[child].join(self._ht[parent])
        # Keep the child's own component pinned to its local clock.
        self._ht[child].assign(child, self._nt[child])

    def _join(self, event: Event) -> None:
        parent, child = event.thread, event.other_thread
        self._init_thread(child)
        self._pt[parent].join(self._clock_c(child))
        self._ht[parent].join(self._ht[child])
        self._ht[parent].assign(parent, self._nt[parent])

    # ------------------------------------------------------------------ #
    # Race checking
    # ------------------------------------------------------------------ #

    def _check_access(self, event: Event) -> None:
        clock = self._clock_c(event.thread)
        self._history.observe(event, clock, self.report)

    def finish(self) -> None:
        if self._track_queue_stats:
            events = max(1, len(self._trace) if self._trace is not None else 1)
            self.report.stats["max_queue_total"] = float(self._max_queue_total)
            self.report.stats["max_queue_fraction"] = (
                self._max_queue_total / float(events)
            )

    # ------------------------------------------------------------------ #
    # Introspection helpers used by tests and the closure cross-check
    # ------------------------------------------------------------------ #

    def timestamps(self, trace: Trace) -> List[VectorClock]:
        """Run over ``trace`` and return the WCP timestamp ``C_e`` per event.

        Used by tests to cross-validate against the explicit closure
        (Theorem 2: ``a <=_WCP b  iff  C_a <= C_b`` for ``a`` earlier than
        ``b``).
        """
        self.reset(trace)
        clocks: List[VectorClock] = []
        for event in trace:
            self.process(event)
            clocks.append(self._clock_c(event.thread))
        self.finish()
        return clocks
