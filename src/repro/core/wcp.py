"""Algorithm 1: the linear-time WCP vector-clock detector.

This is the paper's central algorithmic contribution (Section 3).  The
detector processes the trace in a single streaming pass and maintains:

``N_t``
    an integer local clock per thread, incremented just before processing
    an event whose thread-order predecessor was a release;
``P_t``
    the WCP-predecessor clock of thread ``t`` (the join of ``C_e`` over all
    events ``e`` WCP-before the last event of ``t``);
``H_t``
    the happens-before clock of thread ``t`` (component ``t`` always equals
    ``N_t``);
``P_l`` / ``H_l``
    per-lock copies of the WCP/HB clocks of the last release of ``l``;
``L^r_{l,x}`` / ``L^w_{l,x}``
    per lock and variable, the join of the HB times of all releases of
    ``l`` whose critical section read / wrote ``x`` (these implement
    Rule (a) of WCP);
``Acq_l(t)`` / ``Rel_l(t)``
    per lock and thread, FIFO queues holding the acquire timestamps and
    release HB-times of critical sections performed by *other* threads
    (these implement Rule (b)).

The derived event timestamp is ``C_e = P_t[t := N_t]`` taken right after
processing ``e``.  Theorem 2 states ``a <=_WCP b  iff  C_a <= C_b`` (for
``a`` earlier than ``b``), so the race check is a per-variable clock
comparison (see :mod:`repro.core.history`).

Fork and join events are not part of the paper's formal model but are
emitted by real loggers; we treat them as inviolable program-order edges
(like thread order) by joining the parent's ``C`` into the child's ``P``
and ``H`` on fork, and symmetrically on join.

One deliberate deviation from the literal pseudocode: Definition 3's
Rule (a) requires the event in ``CS(r)`` to *conflict* with the later
access, and conflicting events must be from different threads.  The
pseudocode's ``L^r_{l,x}`` / ``L^w_{l,x}`` clocks join the HB times of all
releases -- including releases performed by the reading/writing thread
itself -- which can introduce orderings (and hence hide races) that the
definition does not impose.  We therefore keep those clocks per releasing
thread and skip the accessing thread's own contribution, which makes the
detector agree exactly with the closure oracle
(:class:`repro.core.closure.WCPClosure`); pass ``strict_pseudocode=True``
to reproduce the literal Algorithm 1 behaviour instead.

Complexity matches Theorem 3: ``O(N * (T^2 + L))`` time; space is linear in
the worst case due to the FIFO queues, and the detector records the maximum
total queue length so Table 1's column 11 can be reproduced.

One exact (semantics-preserving) optimisation is applied by default: the
queues ``Acq_l(t)`` / ``Rel_l(t)`` are only maintained for threads ``t``
that release ``l`` somewhere in the trace.  A queue belonging to a thread
that never releases the lock is only ever written, never read, so dropping
it cannot change any timestamp -- but it changes the memory profile
dramatically on traces with thread-local locks (which would otherwise
accumulate entries forever).  Pass ``prune_queues=False`` to keep every
queue, e.g. when feeding events online without a complete trace.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.core.detector import Detector
from repro.core.history import AccessHistory
from repro.trace.event import Event, EventType
from repro.trace.trace import Trace
from repro.vectorclock.clock import VectorClock


class WCPDetector(Detector):
    """Streaming WCP race detector (Algorithm 1).

    Parameters
    ----------
    track_queue_stats:
        When True (default) record the maximum total FIFO-queue length in
        ``report.stats["max_queue_total"]`` and the fraction of the trace
        length in ``report.stats["max_queue_fraction"]`` (Table 1, col 11).
    strict_pseudocode:
        When True, follow Algorithm 1 literally and let Rule (a) joins
        include releases performed by the accessing thread itself (see the
        module docstring).  Default False (agree with Definition 3).
    prune_queues:
        When True (default) only keep per-(lock, thread) queues for threads
        that release the lock somewhere in the trace (exactly equivalent,
        far less memory).  Requires the full trace at :meth:`reset`.
    """

    name = "WCP"

    def __init__(
        self,
        track_queue_stats: bool = True,
        strict_pseudocode: bool = False,
        prune_queues: bool = True,
    ) -> None:
        super().__init__()
        self._track_queue_stats = track_queue_stats
        self._strict_pseudocode = strict_pseudocode
        self._prune_queues = prune_queues
        self._trace: Optional[Trace] = None

    # ------------------------------------------------------------------ #
    # State management
    # ------------------------------------------------------------------ #

    def reset(self, trace: Trace) -> None:
        self._trace = trace
        self._new_report(trace)
        self._threads: List[str] = trace.threads

        # Local clocks and thread clocks.
        self._nt: Dict[str, int] = {}
        self._pt: Dict[str, VectorClock] = {}
        self._ht: Dict[str, VectorClock] = {}
        self._prev_was_release: Dict[str, bool] = {}

        # Per-lock clocks.
        self._pl: Dict[str, VectorClock] = defaultdict(VectorClock.bottom)
        self._hl: Dict[str, VectorClock] = defaultdict(VectorClock.bottom)

        # Per (lock, variable) release-time joins for Rule (a), keyed by the
        # releasing thread so that an accessing thread can skip its own
        # releases (see the module docstring).
        self._lr: Dict[Tuple[str, str], Dict[str, VectorClock]] = defaultdict(dict)
        self._lw: Dict[Tuple[str, str], Dict[str, VectorClock]] = defaultdict(dict)

        # Per (lock, thread) FIFO queues for Rule (b).
        self._acq_q: Dict[Tuple[str, str], Deque[VectorClock]] = defaultdict(deque)
        self._rel_q: Dict[Tuple[str, str], Deque[VectorClock]] = defaultdict(deque)

        # Per-thread stack of open critical sections:
        # (lock, variables read, variables written).
        self._open_sections: Dict[str, List[Tuple[str, Set[str], Set[str]]]] = (
            defaultdict(list)
        )

        self._history = AccessHistory()
        self._queue_total = 0
        self._max_queue_total = 0

        # Threads that release each lock somewhere in the trace: queues for
        # other threads are never read, so they need not be kept.
        self._releasers: Dict[str, Set[str]] = defaultdict(set)
        if self._prune_queues:
            for event in trace:
                if event.is_release():
                    self._releasers[event.lock].add(event.thread)

        for thread in self._threads:
            self._init_thread(thread)

    def _init_thread(self, thread: str) -> None:
        if thread in self._nt:
            return
        self._nt[thread] = 1
        self._pt[thread] = VectorClock.bottom()
        self._ht[thread] = VectorClock.single(thread, 1)
        self._prev_was_release[thread] = False
        if thread not in self._threads:
            self._threads.append(thread)

    # ------------------------------------------------------------------ #
    # Clock helpers
    # ------------------------------------------------------------------ #

    def _clock_c(self, thread: str) -> VectorClock:
        """Return ``C_t = P_t[t := N_t]`` as a fresh clock."""
        return self._pt[thread].copy().assign(thread, self._nt[thread])

    def _maybe_increment(self, thread: str) -> None:
        """Increment ``N_t`` iff the previous event of ``t`` was a release."""
        if self._prev_was_release.get(thread):
            self._nt[thread] += 1
            self._ht[thread].assign(thread, self._nt[thread])
            self._prev_was_release[thread] = False

    def _bump_queue_total(self, delta: int) -> None:
        if not self._track_queue_stats:
            return
        self._queue_total += delta
        if self._queue_total > self._max_queue_total:
            self._max_queue_total = self._queue_total

    # ------------------------------------------------------------------ #
    # Event dispatch
    # ------------------------------------------------------------------ #

    def process(self, event: Event) -> None:
        thread = event.thread
        self._init_thread(thread)
        self._maybe_increment(thread)

        etype = event.etype
        if etype is EventType.ACQUIRE:
            self._acquire(event)
        elif etype is EventType.RELEASE:
            self._release(event)
        elif etype is EventType.READ:
            self._read(event)
        elif etype is EventType.WRITE:
            self._write(event)
        elif etype is EventType.FORK:
            self._fork(event)
        elif etype is EventType.JOIN:
            self._join(event)
        # BEGIN / END need no clock work.

        self._prev_was_release[thread] = etype is EventType.RELEASE

    # ------------------------------------------------------------------ #
    # Algorithm 1 procedures
    # ------------------------------------------------------------------ #

    def _acquire(self, event: Event) -> None:
        thread, lock = event.thread, event.lock
        # Lines 1-2: receive the HB / WCP knowledge of the last release of l.
        self._ht[thread].join(self._hl[lock])
        self._pt[thread].join(self._pl[lock])
        # Line 3: advertise this acquire's timestamp to every other thread
        # (that will ever read its queue, i.e. that releases this lock).
        acquire_clock = self._clock_c(thread)
        for other in self._queue_audience(lock, thread):
            self._acq_q[(lock, other)].append(acquire_clock)
            self._bump_queue_total(1)
        # Track the opening of the critical section for R/W collection.
        self._open_sections[thread].append((lock, set(), set()))

    def _release(self, event: Event) -> None:
        thread, lock = event.thread, event.lock
        pt = self._pt[thread]

        # Lines 4-6: apply Rule (b) for every earlier critical section of
        # this lock whose acquire is WCP-ordered before this release.
        acq_queue = self._acq_q[(lock, thread)]
        rel_queue = self._rel_q[(lock, thread)]
        while acq_queue:
            current_clock = self._clock_c(thread)
            if not (acq_queue[0] <= current_clock):
                break
            if not rel_queue:
                # Only possible on malformed (e.g. windowed) traces where the
                # earlier critical section's release was cut off.
                break
            acq_queue.popleft()
            pt.join(rel_queue.popleft())
            self._bump_queue_total(-2)

        # Close the critical section and fetch its accessed variables.
        reads: Set[str] = set()
        writes: Set[str] = set()
        stack = self._open_sections[thread]
        if stack and stack[-1][0] == lock:
            _, reads, writes = stack.pop()
        elif stack:
            # Non-nested release (only on unvalidated traces): best effort.
            for position in range(len(stack) - 1, -1, -1):
                if stack[position][0] == lock:
                    _, reads, writes = stack.pop(position)
                    break

        ht_full = self._ht[thread]
        # Lines 7-8: remember this release's HB time for Rule (a).
        for variable in reads:
            self._join_release_time(self._lr[(lock, variable)], thread, ht_full)
        for variable in writes:
            self._join_release_time(self._lw[(lock, variable)], thread, ht_full)

        # Line 9: per-lock clocks now describe this (latest) release.
        self._hl[lock] = ht_full.copy()
        self._pl[lock] = pt.copy()

        # Line 10: advertise this release's HB time to every other thread
        # (that will ever read its queue).
        release_time = ht_full.copy()
        for other in self._queue_audience(lock, thread):
            self._rel_q[(lock, other)].append(release_time)
            self._bump_queue_total(1)

    def _queue_audience(self, lock: str, thread: str) -> List[str]:
        """Threads whose (lock, thread) queues must receive this entry."""
        if self._prune_queues:
            audience = self._releasers.get(lock, ())
        else:
            audience = self._threads
        return [other for other in audience if other != thread]

    @staticmethod
    def _join_release_time(
        cell: Dict[str, VectorClock], thread: str, time: VectorClock
    ) -> None:
        existing = cell.get(thread)
        if existing is None:
            cell[thread] = time.copy()
        else:
            existing.join(time)

    def _join_rule_a(
        self, target: VectorClock, cell: Dict[str, VectorClock], thread: str
    ) -> None:
        """Join into ``target`` the Rule (a) release times relevant to ``thread``."""
        for releasing_thread, clock in cell.items():
            if releasing_thread == thread and not self._strict_pseudocode:
                continue
            target.join(clock)

    def _held_locks(self, thread: str) -> List[str]:
        return [section[0] for section in self._open_sections[thread]]

    def _note_access(self, thread: str, variable: str, is_write: bool) -> None:
        for _, reads, writes in self._open_sections[thread]:
            (writes if is_write else reads).add(variable)

    def _read(self, event: Event) -> None:
        thread, variable = event.thread, event.variable
        pt = self._pt[thread]
        # Line 11: Rule (a) -- order this read after every release of an
        # enclosing lock whose critical section wrote the same variable.
        for lock in self._held_locks(thread):
            self._join_rule_a(pt, self._lw[(lock, variable)], thread)
        self._note_access(thread, variable, is_write=False)
        self._check_access(event)

    def _write(self, event: Event) -> None:
        thread, variable = event.thread, event.variable
        pt = self._pt[thread]
        # Line 12: Rule (a) for writes -- conflicting accesses are both the
        # reads and the writes of the enclosing critical sections.
        for lock in self._held_locks(thread):
            self._join_rule_a(pt, self._lr[(lock, variable)], thread)
            self._join_rule_a(pt, self._lw[(lock, variable)], thread)
        self._note_access(thread, variable, is_write=True)
        self._check_access(event)

    def _fork(self, event: Event) -> None:
        parent, child = event.thread, event.other_thread
        self._init_thread(child)
        parent_clock = self._clock_c(parent)
        self._pt[child].join(parent_clock)
        self._ht[child].join(self._ht[parent])
        # Keep the child's own component pinned to its local clock.
        self._ht[child].assign(child, self._nt[child])

    def _join(self, event: Event) -> None:
        parent, child = event.thread, event.other_thread
        self._init_thread(child)
        self._pt[parent].join(self._clock_c(child))
        self._ht[parent].join(self._ht[child])
        self._ht[parent].assign(parent, self._nt[parent])

    # ------------------------------------------------------------------ #
    # Race checking
    # ------------------------------------------------------------------ #

    def _check_access(self, event: Event) -> None:
        clock = self._clock_c(event.thread)
        self._history.observe(event, clock, self.report)

    def finish(self) -> None:
        if self._track_queue_stats:
            events = max(1, len(self._trace) if self._trace is not None else 1)
            self.report.stats["max_queue_total"] = float(self._max_queue_total)
            self.report.stats["max_queue_fraction"] = (
                self._max_queue_total / float(events)
            )

    # ------------------------------------------------------------------ #
    # Introspection helpers used by tests and the closure cross-check
    # ------------------------------------------------------------------ #

    def timestamps(self, trace: Trace) -> List[VectorClock]:
        """Run over ``trace`` and return the WCP timestamp ``C_e`` per event.

        Used by tests to cross-validate against the explicit closure
        (Theorem 2: ``a <=_WCP b  iff  C_a <= C_b`` for ``a`` earlier than
        ``b``).
        """
        self.reset(trace)
        clocks: List[VectorClock] = []
        for event in trace:
            self.process(event)
            clocks.append(self._clock_c(event.thread))
        self.finish()
        return clocks
