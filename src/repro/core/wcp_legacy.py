"""The pre-optimisation WCP detector, kept frozen for differential testing.

This is the string-keyed, sparse-``VectorClock`` implementation of
Algorithm 1 exactly as it stood before the hot-path overhaul that
introduced interned thread ids, :class:`~repro.vectorclock.dense.DenseClock`
and the epoch-accelerated access history (see :mod:`repro.core.wcp` for
the current implementation and the full algorithmic commentary).

It exists for two reasons:

* **differential testing** -- the parity suite
  (``tests/test_backend_parity.py``) runs random traces through this
  detector and the optimised one and asserts identical race reports,
  timestamps and queue statistics, so any behavioural drift in the hot
  path is caught immediately;
* **benchmark baseline** -- ``benchmarks/bench_hotpath.py`` measures the
  optimised detector's events/sec against this implementation to produce
  the checked-in ``BENCH_hotpath.json`` speedup trajectory.

Do not add features here; it intentionally allocates a fresh ``C_t`` per
event, keys every per-thread structure by the raw string identifier, and
re-derives ``_clock_c`` inside the Rule (b) cursor walk, because that is
the cost profile being measured against.  The pre-overhaul access history
is frozen here as well (:class:`_LegacyAccessHistory`): sharing the live,
epoch-accelerated :mod:`repro.core.history` would make the differential
blind to regressions in the rewritten history itself.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.core.detector import Detector
from repro.core.races import RaceReport
from repro.trace.event import Event, EventType
from repro.trace.trace import Trace
from repro.vectorclock.clock import VectorClock

# (event, clock) of the latest access at one (thread, location).
_Cell = Tuple[Event, VectorClock]


class _LegacyVariableHistory:
    """Pre-overhaul access history for a single shared variable (frozen)."""

    __slots__ = ("read_join", "write_join", "reads", "writes")

    def __init__(self) -> None:
        self.read_join = VectorClock.bottom()
        self.write_join = VectorClock.bottom()
        # thread -> location -> (event, clock)
        self.reads: Dict[str, Dict[str, _Cell]] = {}
        self.writes: Dict[str, Dict[str, _Cell]] = {}

    def record_read(self, event: Event, clock: VectorClock) -> None:
        self.read_join.join(clock)
        cells = self.reads.setdefault(event.thread, {})
        cells[event.location()] = (event, clock.copy())

    def record_write(self, event: Event, clock: VectorClock) -> None:
        self.write_join.join(clock)
        cells = self.writes.setdefault(event.thread, {})
        cells[event.location()] = (event, clock.copy())

    def _unordered_cells(
        self, cells: Dict[str, Dict[str, _Cell]], event: Event, clock: VectorClock
    ) -> List[Event]:
        racy = []
        for thread, by_loc in cells.items():
            if thread == event.thread:
                continue
            for prior_event, prior_clock in by_loc.values():
                if not prior_clock <= clock:
                    racy.append(prior_event)
        return racy

    def check_read(self, event: Event, clock: VectorClock) -> List[Event]:
        if self.write_join <= clock:
            return []
        return self._unordered_cells(self.writes, event, clock)

    def check_write(self, event: Event, clock: VectorClock) -> List[Event]:
        racy: List[Event] = []
        if not (self.write_join <= clock):
            racy.extend(self._unordered_cells(self.writes, event, clock))
        if not (self.read_join <= clock):
            racy.extend(self._unordered_cells(self.reads, event, clock))
        return racy


class _LegacyAccessHistory:
    """Pre-overhaul join-based access history (no epochs, copying records)."""

    def __init__(self) -> None:
        self._variables: Dict[str, _LegacyVariableHistory] = {}

    def _history(self, variable: str) -> _LegacyVariableHistory:
        history = self._variables.get(variable)
        if history is None:
            history = _LegacyVariableHistory()
            self._variables[variable] = history
        return history

    def observe(
        self,
        event: Event,
        clock: VectorClock,
        report: RaceReport,
        on_race: Optional[Callable[[Event, Event], None]] = None,
    ) -> int:
        history = self._history(event.variable)
        if event.is_read():
            racy = history.check_read(event, clock)
        else:
            racy = history.check_write(event, clock)
        for earlier in racy:
            report.add(earlier, event)
            if on_race is not None:
                on_race(earlier, event)
        if event.is_read():
            history.record_read(event, clock)
        else:
            history.record_write(event, clock)
        return len(racy)


class LegacyWCPDetector(Detector):
    """The pre-overhaul streaming WCP detector (Algorithm 1).

    Same parameters and observable behaviour as
    :class:`repro.core.wcp.WCPDetector`; see the module docstring for why
    it is kept.
    """

    name = "WCP-legacy"

    #: Frozen baseline: deliberately excluded from the snapshot protocol
    #: (no features are added here), so the engine refuses to checkpoint
    #: it with a capability error instead of a pickle traceback.
    supports_snapshot = False

    def __init__(
        self,
        track_queue_stats: bool = True,
        strict_pseudocode: bool = False,
        prune_queues: bool = True,
    ) -> None:
        super().__init__()
        self._track_queue_stats = track_queue_stats
        self._strict_pseudocode = strict_pseudocode
        self._prune_queues = prune_queues
        self._trace: Optional[Trace] = None

    # ------------------------------------------------------------------ #
    # State management
    # ------------------------------------------------------------------ #

    def reset(self, trace: Trace) -> None:
        self._trace = trace
        self._new_report(trace)
        self._threads: List[str] = trace.threads

        # Local clocks and thread clocks.
        self._nt: Dict[str, int] = {}
        self._pt: Dict[str, VectorClock] = {}
        self._ht: Dict[str, VectorClock] = {}
        self._prev_was_release: Dict[str, bool] = {}

        # Per-lock clocks.
        self._pl: Dict[str, VectorClock] = defaultdict(VectorClock.bottom)
        self._hl: Dict[str, VectorClock] = defaultdict(VectorClock.bottom)

        # Per (lock, variable) release-time joins for Rule (a), keyed by the
        # releasing thread.
        self._lr: Dict[Tuple[str, str], Dict[str, VectorClock]] = defaultdict(dict)
        self._lw: Dict[Tuple[str, str], Dict[str, VectorClock]] = defaultdict(dict)

        # Rule (b) state: per-lock shared log of critical sections.
        self._cs_log: Dict[str, Deque[list]] = defaultdict(deque)
        self._cs_base: Dict[str, int] = defaultdict(int)
        self._cursor: Dict[Tuple[str, str], int] = {}
        self._open_entry: Dict[Tuple[str, str], int] = {}

        # Per-thread stack of open critical sections:
        # (lock, variables read, variables written).
        self._open_sections: Dict[str, List[Tuple[str, Set[str], Set[str]]]] = (
            defaultdict(list)
        )

        self._history = _LegacyAccessHistory()
        self._queue_total = 0
        self._max_queue_total = 0

        self._releasers: Dict[str, Set[str]] = defaultdict(set)
        self._effective_prune = (
            self._prune_queues and getattr(trace, "is_complete", True)
        )
        if self._effective_prune:
            for event in trace:
                if event.is_release():
                    self._releasers[event.lock].add(event.thread)

        for thread in self._threads:
            self._init_thread(thread)

    def _init_thread(self, thread: str) -> None:
        if thread in self._nt:
            return
        self._nt[thread] = 1
        self._pt[thread] = VectorClock.bottom()
        self._ht[thread] = VectorClock.single(thread, 1)
        self._prev_was_release[thread] = False
        if thread not in self._threads:
            self._threads.append(thread)

    # ------------------------------------------------------------------ #
    # Clock helpers
    # ------------------------------------------------------------------ #

    def _clock_c(self, thread: str) -> VectorClock:
        """Return ``C_t = P_t[t := N_t]`` as a fresh clock."""
        return self._pt[thread].copy().assign(thread, self._nt[thread])

    def _maybe_increment(self, thread: str) -> None:
        """Increment ``N_t`` iff the previous event of ``t`` was a release."""
        if self._prev_was_release.get(thread):
            self._nt[thread] += 1
            self._ht[thread].assign(thread, self._nt[thread])
            self._prev_was_release[thread] = False

    def _bump_queue_total(self, delta: int) -> None:
        if not self._track_queue_stats:
            return
        self._queue_total += delta
        if self._queue_total > self._max_queue_total:
            self._max_queue_total = self._queue_total

    # ------------------------------------------------------------------ #
    # Event dispatch
    # ------------------------------------------------------------------ #

    def process(self, event: Event) -> None:
        thread = event.thread
        self._init_thread(thread)
        self._maybe_increment(thread)

        etype = event.etype
        if etype is EventType.ACQUIRE:
            self._acquire(event)
        elif etype is EventType.RELEASE:
            self._release(event)
        elif etype is EventType.READ:
            self._read(event)
        elif etype is EventType.WRITE:
            self._write(event)
        elif etype is EventType.FORK:
            self._fork(event)
        elif etype is EventType.JOIN:
            self._join(event)
        # BEGIN / END need no clock work.

        self._prev_was_release[thread] = etype is EventType.RELEASE

    # ------------------------------------------------------------------ #
    # Algorithm 1 procedures
    # ------------------------------------------------------------------ #

    def _acquire(self, event: Event) -> None:
        thread, lock = event.thread, event.lock
        self._ht[thread].join(self._hl[lock])
        self._pt[thread].join(self._pl[lock])
        log = self._cs_log[lock]
        self._open_entry[(lock, thread)] = self._cs_base[lock] + len(log)
        log.append([self._clock_c(thread), None, thread])
        self._bump_queue_total(self._audience_size(lock, thread))
        self._open_sections[thread].append((lock, set(), set()))

    def _release(self, event: Event) -> None:
        thread, lock = event.thread, event.lock
        pt = self._pt[thread]

        log = self._cs_log[lock]
        base = self._cs_base[lock]
        cursor = max(self._cursor.get((lock, thread), 0), base)
        while cursor - base < len(log):
            acq_clock, release_time, owner = log[cursor - base]
            if owner == thread:
                cursor += 1
                continue
            if not (acq_clock <= self._clock_c(thread)):
                break
            if release_time is None:
                break
            pt.join(release_time)
            self._bump_queue_total(-2)
            cursor += 1
        self._cursor[(lock, thread)] = cursor

        reads: Set[str] = set()
        writes: Set[str] = set()
        stack = self._open_sections[thread]
        if stack and stack[-1][0] == lock:
            _, reads, writes = stack.pop()
        elif stack:
            for position in range(len(stack) - 1, -1, -1):
                if stack[position][0] == lock:
                    _, reads, writes = stack.pop(position)
                    break

        ht_full = self._ht[thread]
        for variable in reads:
            self._join_release_time(self._lr[(lock, variable)], thread, ht_full)
        for variable in writes:
            self._join_release_time(self._lw[(lock, variable)], thread, ht_full)

        self._hl[lock] = ht_full.copy()
        self._pl[lock] = pt.copy()

        open_index = self._open_entry.pop((lock, thread), None)
        if open_index is not None and open_index >= self._cs_base[lock]:
            log[open_index - self._cs_base[lock]][1] = ht_full.copy()
        self._bump_queue_total(self._audience_size(lock, thread))

        if self._effective_prune:
            self._reclaim(lock)

    def _audience_size(self, lock: str, thread: str) -> int:
        if self._effective_prune:
            audience = self._releasers.get(lock, ())
        else:
            audience = self._threads
        size = len(audience)
        return size - 1 if thread in audience else size

    def _reclaim(self, lock: str) -> None:
        log = self._cs_log[lock]
        base = self._cs_base[lock]
        releasers = self._releasers.get(lock, ())
        while log:
            _, release_time, owner = log[0]
            if release_time is None:
                break
            if any(
                consumer != owner
                and self._cursor.get((lock, consumer), 0) <= base
                for consumer in releasers
            ):
                break
            log.popleft()
            base += 1
        self._cs_base[lock] = base

    @staticmethod
    def _join_release_time(
        cell: Dict[str, VectorClock], thread: str, time: VectorClock
    ) -> None:
        existing = cell.get(thread)
        if existing is None:
            cell[thread] = time.copy()
        else:
            existing.join(time)

    def _join_rule_a(
        self, target: VectorClock, cell: Dict[str, VectorClock], thread: str
    ) -> None:
        for releasing_thread, clock in cell.items():
            if releasing_thread == thread and not self._strict_pseudocode:
                continue
            target.join(clock)

    def _held_locks(self, thread: str) -> List[str]:
        return [section[0] for section in self._open_sections[thread]]

    def _note_access(self, thread: str, variable: str, is_write: bool) -> None:
        for _, reads, writes in self._open_sections[thread]:
            (writes if is_write else reads).add(variable)

    def _read(self, event: Event) -> None:
        thread, variable = event.thread, event.variable
        pt = self._pt[thread]
        for lock in self._held_locks(thread):
            self._join_rule_a(pt, self._lw[(lock, variable)], thread)
        self._note_access(thread, variable, is_write=False)
        self._check_access(event)

    def _write(self, event: Event) -> None:
        thread, variable = event.thread, event.variable
        pt = self._pt[thread]
        for lock in self._held_locks(thread):
            self._join_rule_a(pt, self._lr[(lock, variable)], thread)
            self._join_rule_a(pt, self._lw[(lock, variable)], thread)
        self._note_access(thread, variable, is_write=True)
        self._check_access(event)

    def _fork(self, event: Event) -> None:
        parent, child = event.thread, event.other_thread
        self._init_thread(child)
        parent_clock = self._clock_c(parent)
        self._pt[child].join(parent_clock)
        self._ht[child].join(self._ht[parent])
        self._ht[child].assign(child, self._nt[child])

    def _join(self, event: Event) -> None:
        parent, child = event.thread, event.other_thread
        self._init_thread(child)
        self._pt[parent].join(self._clock_c(child))
        self._ht[parent].join(self._ht[child])
        self._ht[parent].assign(parent, self._nt[parent])

    # ------------------------------------------------------------------ #
    # Race checking
    # ------------------------------------------------------------------ #

    def _check_access(self, event: Event) -> None:
        clock = self._clock_c(event.thread)
        self._history.observe(event, clock, self.report)

    def finish(self) -> None:
        if self._track_queue_stats:
            events = max(1, len(self._trace) if self._trace is not None else 1)
            self.report.stats["max_queue_total"] = float(self._max_queue_total)
            self.report.stats["max_queue_fraction"] = (
                self._max_queue_total / float(events)
            )

    # ------------------------------------------------------------------ #
    # Introspection helpers used by the differential tests
    # ------------------------------------------------------------------ #

    def timestamps(self, trace: Trace) -> List[VectorClock]:
        """Run over ``trace`` and return the WCP timestamp ``C_e`` per event."""
        self.reset(trace)
        clocks: List[VectorClock] = []
        for event in trace:
            self.process(event)
            clocks.append(self._clock_c(event.thread))
        self.finish()
        return clocks
