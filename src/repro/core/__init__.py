"""Core: the paper's contribution (WCP) and the shared detector interface.

* :class:`~repro.core.detector.Detector` -- abstract base class every
  analysis implements (``run(trace) -> RaceReport``).
* :class:`~repro.core.races.RacePair` / :class:`~repro.core.races.RaceReport`
  -- race pairs as unordered location pairs plus the witnessing event pairs,
  exactly the granularity used for Table 1.
* :class:`~repro.core.wcp.WCPDetector` -- Algorithm 1, the streaming
  linear-time vector-clock detector for WCP (interned tids, dense clocks,
  epoch-accelerated race checks).
* :class:`~repro.core.wcp_legacy.LegacyWCPDetector` -- the pre-optimisation
  implementation, frozen as a differential-testing oracle and benchmark
  baseline.
* :class:`~repro.core.closure.WCPClosure` / ``closure_orders`` -- an
  explicit (non-linear) computation of the WCP partial order used as a
  correctness oracle on small traces.
"""

from repro.core.races import RacePair, RaceReport
from repro.core.detector import Detector
from repro.core.wcp import WCPDetector
from repro.core.wcp_legacy import LegacyWCPDetector
from repro.core.closure import WCPClosure

__all__ = [
    "RacePair", "RaceReport", "Detector", "WCPDetector",
    "LegacyWCPDetector", "WCPClosure",
]
