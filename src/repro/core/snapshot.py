"""The versioned detector-state snapshot protocol.

The paper's central property -- WCP maintains *bounded, incrementally
updated* state per event -- means an analysis pass is checkpointable at
any event boundary with a compact snapshot; exponential-space detectors
cannot offer that.  This module defines the envelope every detector
snapshot travels in, whether it lands on disk (the engine's
checkpoint/resume subsystem, :mod:`repro.engine.checkpoint`), on a pipe
(sharded worker restore) or, eventually, on a socket (shard migration).

Envelope layout (all values through the shared codec of
:mod:`repro.vectorclock.codec` -- *not* pickle, so restoring a snapshot
never executes code)::

    MAGIC ("RSNP") + encode((CONTAINER_VERSION, kind, version, config, state))

``kind``
    The detector class name (``"WCPDetector"``) -- a snapshot can only be
    restored into the class that wrote it.
``version``
    The detector's :attr:`~repro.core.detector.Detector.snapshot_version`,
    bumped whenever its state layout changes; mismatches fail fast.
``config``
    The detector's :meth:`~repro.core.detector.Detector.snapshot_config`
    stamp (constructor kwargs).  A snapshot of a dense-clock WCP cannot
    silently restore into a dict-clock one: verdicts would match but
    internals would not, so the protocol refuses.
``state``
    The detector-specific state structure.

:func:`pack_state` / :func:`unpack_state` read and write the envelope;
:func:`unpack_for` additionally validates kind/version/config against a
live detector instance and raises :class:`SnapshotMismatchError` with an
actionable message on any disagreement.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.vectorclock.codec import CodecError, decode, encode
from repro.vectorclock.registry import ThreadRegistry

__all__ = [
    "SnapshotError",
    "SnapshotUnsupportedError",
    "SnapshotMismatchError",
    "pack_state",
    "unpack_state",
    "unpack_for",
    "adopt_registry_names",
]

MAGIC = b"RSNP"
CONTAINER_VERSION = 1


class SnapshotError(ValueError):
    """Base class for snapshot protocol failures."""


class SnapshotUnsupportedError(SnapshotError):
    """The detector does not implement the snapshot protocol."""


class SnapshotMismatchError(SnapshotError):
    """A snapshot cannot be restored into this detector/configuration."""


def pack_state(kind: str, version: int, config: Dict[str, Any], state: Any) -> bytes:
    """Wrap detector ``state`` in the versioned snapshot envelope."""
    return MAGIC + encode((CONTAINER_VERSION, kind, version, config, state))


def unpack_state(blob: bytes) -> Tuple[str, int, Dict[str, Any], Any]:
    """Parse an envelope into ``(kind, version, config, state)``."""
    if not isinstance(blob, (bytes, bytearray)) or blob[:4] != MAGIC:
        raise SnapshotError(
            "not a detector snapshot (missing %r header)" % (MAGIC,)
        )
    try:
        parsed = decode(bytes(blob[4:]))
    except CodecError as error:
        raise SnapshotError("corrupt detector snapshot: %s" % error) from None
    if not isinstance(parsed, tuple) or len(parsed) != 5:
        raise SnapshotError("corrupt detector snapshot envelope")
    container, kind, version, config, state = parsed
    if container != CONTAINER_VERSION:
        raise SnapshotMismatchError(
            "snapshot container version %r is not supported (this build "
            "speaks version %d)" % (container, CONTAINER_VERSION)
        )
    return kind, version, config, state


def unpack_for(detector) -> "_Unpacker":
    """Return a validator-bound unpacker for ``detector`` (see class docs)."""
    return _Unpacker(detector)


class _Unpacker:
    """Unpacks an envelope and validates it against a live detector."""

    def __init__(self, detector) -> None:
        self.detector = detector

    def unpack(self, blob: bytes) -> Any:
        detector = self.detector
        kind, version, config, state = unpack_state(blob)
        expected_kind = type(detector).__name__
        if kind != expected_kind:
            raise SnapshotMismatchError(
                "snapshot was written by %s but is being restored into %s"
                % (kind, expected_kind)
            )
        if version != detector.snapshot_version:
            raise SnapshotMismatchError(
                "%s snapshot format version %r does not match this build's "
                "version %d -- re-run the analysis from the start"
                % (expected_kind, version, detector.snapshot_version)
            )
        expected_config = detector.snapshot_config()
        if config != expected_config:
            diffs = sorted(
                key
                for key in set(config) | set(expected_config)
                if config.get(key) != expected_config.get(key)
            )
            raise SnapshotMismatchError(
                "%s snapshot configuration does not match the detector "
                "(differs on: %s); construct the detector with the "
                "snapshot's configuration %r to resume"
                % (expected_kind, ", ".join(diffs), config)
            )
        return state


def adopt_registry_names(registry: ThreadRegistry, names: List[object]) -> None:
    """Re-establish a snapshot's thread interning in ``registry``.

    Snapshots store all tid-keyed state relative to the registry numbering
    at snapshot time; restoring requires interning the snapshot's
    tid-ordered name list into the resumed pass's (source-shared) registry
    *identically* -- position ``i`` must intern to tid ``i``.  That holds
    whenever the resumed source replays the same stream (interning is
    deterministic in order of first appearance) and the registry has not
    been fed foreign events first; anything else is a configuration error
    surfaced here rather than as silently-corrupt clocks.
    """
    for expected_tid, name in enumerate(names):
        tid = registry.intern(name)
        if tid != expected_tid:
            raise SnapshotMismatchError(
                "thread %r interned as tid %d, snapshot expects %d -- the "
                "resumed source does not replay the checkpointed stream "
                "(or its registry was used before restore)"
                % (name, tid, expected_tid)
            )
