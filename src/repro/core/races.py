"""Race pairs and race reports.

The paper measures *distinct race pairs*: unordered tuples of program
locations such that some pair of events at those locations is unordered by
the partial order under analysis (Table 1, columns 6-10).  A
:class:`RacePair` is one such location pair together with the first
witnessing event pair and its distance (Section 4.3 discusses race
distances); a :class:`RaceReport` aggregates the pairs found by one
detector run plus detector-specific statistics.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.trace.event import Event


class RacePair:
    """A distinct race: an unordered pair of program locations.

    Attributes
    ----------
    locations:
        Frozenset of the two program locations (a single-element set when
        both events come from the same location).
    first_event / second_event:
        The first witnessing event pair encountered, in trace order.
    distance:
        Number of events separating the witnesses (``second.index -
        first.index``); the paper's race distance.
    variable:
        The shared variable involved.
    """

    __slots__ = ("locations", "first_event", "second_event", "distance", "variable")

    def __init__(self, first_event: Event, second_event: Event) -> None:
        if first_event.index > second_event.index:
            first_event, second_event = second_event, first_event
        self.first_event = first_event
        self.second_event = second_event
        self.locations = frozenset({first_event.location(), second_event.location()})
        self.distance = second_event.index - first_event.index
        self.variable = second_event.variable if second_event.is_access() else None

    def key(self) -> frozenset:
        """Return the de-duplication key (the unordered location pair)."""
        return self.locations

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RacePair):
            return NotImplemented
        return self.locations == other.locations

    def __hash__(self) -> int:
        return hash(self.locations)

    def __repr__(self) -> str:
        locs = sorted(self.locations)
        return "RacePair(%s, var=%s, distance=%d)" % (
            " <-> ".join(locs), self.variable, self.distance
        )


class ReportSnapshot:
    """An immutable point-in-time view of a detector's progress.

    Snapshots are cheap (a handful of scalars, no event references beyond
    the report's own pairs) and are emitted by the streaming engine at
    configurable intervals so that long-running analyses can be monitored
    incrementally.
    """

    __slots__ = (
        "detector_name", "trace_name", "events", "races", "raw_races", "time_s"
    )

    def __init__(
        self,
        detector_name: str,
        trace_name: str,
        events: int,
        races: int,
        raw_races: int,
        time_s: float = 0.0,
    ) -> None:
        self.detector_name = detector_name
        self.trace_name = trace_name
        #: Number of events the detector had processed at snapshot time.
        self.events = events
        #: Distinct race pairs found so far.
        self.races = races
        #: Raw (non-deduplicated) racy event pairs observed so far.
        self.raw_races = raw_races
        #: Analysis seconds attributed to this detector so far (0.0 when
        #: per-detector cost accounting is disabled).
        self.time_s = time_s

    def as_dict(self) -> Dict[str, object]:
        """Flatten the snapshot for logging or serialization."""
        return {
            "detector": self.detector_name,
            "trace": self.trace_name,
            "events": self.events,
            "races": self.races,
            "raw_races": self.raw_races,
            "time_s": self.time_s,
        }

    def __repr__(self) -> str:
        return "ReportSnapshot(%s@%d: %d race(s))" % (
            self.detector_name, self.events, self.races
        )


class RaceReport:
    """The result of running one detector on one trace.

    Race pairs are de-duplicated by location pair: the report keeps the
    earliest witness and the maximum observed distance for each pair.
    """

    def __init__(self, detector_name: str, trace_name: str = "trace") -> None:
        self.detector_name = detector_name
        self.trace_name = trace_name
        self._pairs: Dict[frozenset, RacePair] = {}
        self._max_distance: Dict[frozenset, int] = {}
        #: Detector-specific statistics (queue sizes, timings, windows, ...).
        self.stats: Dict[str, float] = {}
        #: Number of raw (non-deduplicated) racy event pairs observed.
        self.raw_race_count = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def add(self, first_event: Event, second_event: Event) -> RacePair:
        """Record a racy event pair; returns the (possibly existing) RacePair."""
        pair = RacePair(first_event, second_event)
        self.raw_race_count += 1
        key = pair.key()
        existing = self._pairs.get(key)
        if existing is None:
            self._pairs[key] = pair
            self._max_distance[key] = pair.distance
            return pair
        if pair.distance > self._max_distance[key]:
            self._max_distance[key] = pair.distance
        return existing

    def merge(self, other: "RaceReport") -> "RaceReport":
        """Merge another report (a different window or shard) into this one.

        De-duplication matches a single sequential run: per location pair
        the earliest-*detected* witness survives -- races are detected at
        their second (later) event, so detection order is the
        lexicographic order of ``(second.index, first.index)`` -- and the
        maximum distance is kept.  This makes the merge independent of
        the order reports are merged in, so a sharded run reproduces the
        single engine's witnesses exactly.
        """
        for pair in other.pairs():
            key = pair.key()
            existing = self._pairs.get(key)
            if existing is None:
                self._pairs[key] = pair
                self._max_distance[key] = pair.distance
                continue
            if (
                (pair.second_event.index, pair.first_event.index)
                < (existing.second_event.index, existing.first_event.index)
            ):
                self._pairs[key] = pair
            if pair.distance > self._max_distance[key]:
                self._max_distance[key] = pair.distance
        self.raw_race_count += other.raw_race_count
        return self

    # ------------------------------------------------------------------ #
    # Snapshot support (checkpoint/resume protocol)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> Dict[str, object]:
        """Return the report's full state as codec-encodable structures.

        Captures the pairs in insertion (detection) order with their
        maximum observed distances, so :meth:`from_state` rebuilds a
        report indistinguishable from the original -- including witness
        choice, which :meth:`add`'s first-wins rule pinned at detection
        time.
        """
        return {
            "detector": self.detector_name,
            "trace": self.trace_name,
            "pairs": [
                (pair.first_event, pair.second_event, self._max_distance[key])
                for key, pair in self._pairs.items()
            ],
            "stats": dict(self.stats),
            "raw": self.raw_race_count,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "RaceReport":
        """Inverse of :meth:`state_dict`."""
        report = cls(state["detector"], state["trace"])
        for first_event, second_event, max_distance in state["pairs"]:
            pair = RacePair(first_event, second_event)
            key = pair.key()
            report._pairs[key] = pair
            report._max_distance[key] = max_distance
        report.stats.update(state["stats"])
        report.raw_race_count = state["raw"]
        return report

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def pairs(self) -> List[RacePair]:
        """Return the distinct race pairs, sorted by first witness position."""
        return sorted(self._pairs.values(), key=lambda p: p.first_event.index)

    def location_pairs(self) -> List[frozenset]:
        """Return the distinct location pairs (the Table 1 count unit)."""
        return list(self._pairs.keys())

    def count(self) -> int:
        """Return the number of distinct race pairs."""
        return len(self._pairs)

    def max_distance(self) -> int:
        """Return the maximum race distance over all pairs (0 when race-free)."""
        if not self._max_distance:
            return 0
        return max(self._max_distance.values())

    def distance_of(self, pair: RacePair) -> int:
        """Return the maximum observed distance for ``pair``."""
        return self._max_distance.get(pair.key(), pair.distance)

    def has_race(self) -> bool:
        """Return True when at least one race pair was found."""
        return bool(self._pairs)

    def variables(self) -> List[str]:
        """Return the distinct variables involved in races."""
        seen = {}
        for pair in self._pairs.values():
            if pair.variable is not None:
                seen.setdefault(pair.variable, None)
        return list(seen)

    def __contains__(self, locations: Iterable[str]) -> bool:
        return frozenset(locations) in self._pairs

    def __iter__(self) -> Iterator[RacePair]:
        return iter(self.pairs())

    def __len__(self) -> int:
        return len(self._pairs)

    def __repr__(self) -> str:
        return "RaceReport(%s on %s: %d distinct races)" % (
            self.detector_name, self.trace_name, len(self._pairs)
        )

    def summary(self) -> str:
        """Return a short multi-line human-readable summary."""
        lines = [
            "%s on %s: %d distinct race pair(s)" % (
                self.detector_name, self.trace_name, self.count()
            )
        ]
        for pair in self.pairs():
            lines.append("  - %s" % (pair,))
        for key, value in sorted(self.stats.items()):
            lines.append("  stat %s = %s" % (key, value))
        return "\n".join(lines)
