"""TraceBuilder -- a small DSL for writing traces by hand.

The paper's figures are given as small hand-written traces.  The builder
lets tests and examples transcribe them almost literally::

    trace = (
        TraceBuilder()
        .acquire("t1", "l")
        .read("t1", "x")
        .write("t1", "x")
        .release("t1", "l")
        .acquire("t2", "l")
        .read("t2", "x")
        .write("t2", "x")
        .release("t2", "l")
        .build()
    )

The ``sync(x)`` shorthand from the paper (an ``acq(x) r(xVar) w(xVar)
rel(x)`` block) and the ``acrl(y)`` shorthand (``acq(y) rel(y)``) are
provided as :meth:`TraceBuilder.sync` and :meth:`TraceBuilder.acrl`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.trace.event import Event, EventType
from repro.trace.trace import Trace


class TraceBuilder:
    """Accumulates events and produces a validated :class:`Trace`."""

    def __init__(self, name: Optional[str] = None) -> None:
        self._name = name
        self._events: List[Event] = []

    # ------------------------------------------------------------------ #
    # Event constructors (all return self for chaining)
    # ------------------------------------------------------------------ #

    def acquire(self, thread: str, lock: str, loc: Optional[str] = None) -> "TraceBuilder":
        """Append an ``acq(lock)`` event by ``thread``."""
        return self._add(thread, EventType.ACQUIRE, lock, loc)

    def release(self, thread: str, lock: str, loc: Optional[str] = None) -> "TraceBuilder":
        """Append a ``rel(lock)`` event by ``thread``."""
        return self._add(thread, EventType.RELEASE, lock, loc)

    def read(self, thread: str, variable: str, loc: Optional[str] = None) -> "TraceBuilder":
        """Append an ``r(variable)`` event by ``thread``."""
        return self._add(thread, EventType.READ, variable, loc)

    def write(self, thread: str, variable: str, loc: Optional[str] = None) -> "TraceBuilder":
        """Append a ``w(variable)`` event by ``thread``."""
        return self._add(thread, EventType.WRITE, variable, loc)

    def fork(self, thread: str, child: str, loc: Optional[str] = None) -> "TraceBuilder":
        """Append a ``fork(child)`` event by ``thread``."""
        return self._add(thread, EventType.FORK, child, loc)

    def join(self, thread: str, child: str, loc: Optional[str] = None) -> "TraceBuilder":
        """Append a ``join(child)`` event by ``thread``."""
        return self._add(thread, EventType.JOIN, child, loc)

    def read_acquire(self, thread: str, lock: str, loc: Optional[str] = None) -> "TraceBuilder":
        """Append a ``racq_r(lock)`` event: open a read-mode rwlock section."""
        return self._add(thread, EventType.RACQ_R, lock, loc)

    def write_acquire(self, thread: str, lock: str, loc: Optional[str] = None) -> "TraceBuilder":
        """Append a ``racq_w(lock)`` event: open a write-mode rwlock section."""
        return self._add(thread, EventType.RACQ_W, lock, loc)

    def rw_release(self, thread: str, lock: str, loc: Optional[str] = None) -> "TraceBuilder":
        """Append an ``rrel(lock)`` event closing the rwlock section."""
        return self._add(thread, EventType.RREL, lock, loc)

    def barrier(self, thread: str, barrier: str, loc: Optional[str] = None) -> "TraceBuilder":
        """Append a ``barrier(barrier)`` arrival by ``thread``."""
        return self._add(thread, EventType.BARRIER, barrier, loc)

    def wait(self, thread: str, monitor: str, loc: Optional[str] = None) -> "TraceBuilder":
        """Append a ``wait(monitor)`` wake-up (reacquire) by ``thread``.

        Producers desugar a blocking wait as ``rel(monitor)`` at
        wait-start plus ``wait(monitor)`` at wake, so the monitor must be
        free when this event appears.
        """
        return self._add(thread, EventType.WAIT, monitor, loc)

    def notify(self, thread: str, monitor: str, loc: Optional[str] = None) -> "TraceBuilder":
        """Append a ``notify(monitor)`` event by ``thread``."""
        return self._add(thread, EventType.NOTIFY, monitor, loc)

    def begin(self, thread: str, loc: Optional[str] = None) -> "TraceBuilder":
        """Append a thread-begin marker."""
        return self._add(thread, EventType.BEGIN, None, loc)

    def end(self, thread: str, loc: Optional[str] = None) -> "TraceBuilder":
        """Append a thread-end marker."""
        return self._add(thread, EventType.END, None, loc)

    # ------------------------------------------------------------------ #
    # Paper shorthands
    # ------------------------------------------------------------------ #

    def sync(self, thread: str, lock: str, loc: Optional[str] = None) -> "TraceBuilder":
        """Append the paper's ``sync(lock)`` block.

        ``sync(x)`` abbreviates ``acq(x) r(xVar) w(xVar) rel(x)`` where
        ``xVar`` is the variable uniquely associated with lock ``x``
        (Section 2.3).
        """
        variable = "%sVar" % lock
        self.acquire(thread, lock, loc)
        self.read(thread, variable, loc)
        self.write(thread, variable, loc)
        self.release(thread, lock, loc)
        return self

    def acrl(self, thread: str, lock: str, loc: Optional[str] = None) -> "TraceBuilder":
        """Append the paper's ``acrl(lock)`` shorthand: ``acq(lock) rel(lock)``."""
        self.acquire(thread, lock, loc)
        self.release(thread, lock, loc)
        return self

    def critical(self, thread: str, lock: str, *accesses: "tuple") -> "TraceBuilder":
        """Append a whole critical section.

        ``accesses`` are ``(kind, variable)`` pairs where ``kind`` is ``"r"``
        or ``"w"``::

            builder.critical("t1", "l", ("r", "x"), ("w", "y"))
        """
        self.acquire(thread, lock)
        for kind, variable in accesses:
            if kind == "r":
                self.read(thread, variable)
            elif kind == "w":
                self.write(thread, variable)
            else:
                raise ValueError("access kind must be 'r' or 'w', got %r" % kind)
        self.release(thread, lock)
        return self

    # ------------------------------------------------------------------ #
    # Finalisation
    # ------------------------------------------------------------------ #

    def _add(
        self,
        thread: str,
        etype: EventType,
        target: Optional[str],
        loc: Optional[str],
    ) -> "TraceBuilder":
        index = len(self._events)
        if loc is None:
            loc = "line%d" % (index + 1)
        self._events.append(Event(index, thread, etype, target, loc))
        return self

    def events(self) -> List[Event]:
        """Return the accumulated events without building a trace."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def build(self, validate: bool = True, name: Optional[str] = None) -> Trace:
        """Return the accumulated events as a :class:`Trace`."""
        return Trace(self._events, validate=validate, name=name or self._name)
