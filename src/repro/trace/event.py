"""Events.

An event is a single operation performed by a thread.  The paper's formal
model (Section 2.1) uses lock acquire/release and variable read/write
events; the RAPID implementation additionally consumes thread fork/join
events from the RVPredict logger, and we support those too (they induce
happens-before edges between the forking/forked and joined/joining
threads).

Every event may carry an optional *program location* (``loc``), a string
identifying the source line that produced it.  Race pairs are reported as
unordered pairs of program locations, exactly as in the paper's Table 1
("distinct race pairs ... of program locations").
"""

from __future__ import annotations

import enum
from typing import Optional


class EventType(enum.Enum):
    """The kind of operation an event performs."""

    ACQUIRE = "acq"
    RELEASE = "rel"
    READ = "r"
    WRITE = "w"
    FORK = "fork"
    JOIN = "join"
    BEGIN = "begin"
    END = "end"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Event types that operate on a lock.
LOCK_EVENTS = frozenset({EventType.ACQUIRE, EventType.RELEASE})

#: Event types that access a shared variable.
ACCESS_EVENTS = frozenset({EventType.READ, EventType.WRITE})

#: Event types that reference another thread.
THREAD_EVENTS = frozenset({EventType.FORK, EventType.JOIN})


class Event:
    """A single trace event.

    Parameters
    ----------
    index:
        Zero-based position of the event in its trace.  Assigned by
        :class:`repro.trace.trace.Trace`; builders may pass ``-1`` and let
        the trace renumber.
    thread:
        Identifier of the performing thread (``t(e)`` in the paper).
    etype:
        The :class:`EventType`.
    target:
        The object operated on: a lock name for acquire/release, a variable
        name for read/write, the child/peer thread for fork/join, ``None``
        for begin/end.
    loc:
        Optional program location (source line) used for race de-duplication.
    tid:
        Optional interned integer id of ``thread``, stamped at the
        trace/parser/source boundary by a
        :class:`~repro.vectorclock.registry.ThreadRegistry` so detectors
        can skip per-event string hashing.  ``None`` means "not interned";
        the field is a cache and takes no part in equality or hashing.
    """

    __slots__ = ("index", "thread", "etype", "target", "loc", "tid")

    def __init__(
        self,
        index: int,
        thread: str,
        etype: EventType,
        target: Optional[str] = None,
        loc: Optional[str] = None,
        tid: Optional[int] = None,
    ) -> None:
        if etype in LOCK_EVENTS and target is None:
            raise ValueError("lock events require a lock target")
        if etype in ACCESS_EVENTS and target is None:
            raise ValueError("read/write events require a variable target")
        if etype in THREAD_EVENTS and target is None:
            raise ValueError("fork/join events require a thread target")
        self.index = index
        self.thread = thread
        self.etype = etype
        self.target = target
        self.loc = loc
        self.tid = tid

    # ------------------------------------------------------------------ #
    # Classification helpers
    # ------------------------------------------------------------------ #

    def is_acquire(self) -> bool:
        """Return True for lock-acquire events."""
        return self.etype is EventType.ACQUIRE

    def is_release(self) -> bool:
        """Return True for lock-release events."""
        return self.etype is EventType.RELEASE

    def is_read(self) -> bool:
        """Return True for variable-read events."""
        return self.etype is EventType.READ

    def is_write(self) -> bool:
        """Return True for variable-write events."""
        return self.etype is EventType.WRITE

    def is_access(self) -> bool:
        """Return True for read or write events."""
        return self.etype in ACCESS_EVENTS

    def is_lock_event(self) -> bool:
        """Return True for acquire or release events."""
        return self.etype in LOCK_EVENTS

    def is_fork(self) -> bool:
        """Return True for fork events."""
        return self.etype is EventType.FORK

    def is_join(self) -> bool:
        """Return True for join events."""
        return self.etype is EventType.JOIN

    @property
    def lock(self) -> str:
        """The lock operated on (``l(e)``); only valid for acquire/release."""
        if not self.is_lock_event():
            raise AttributeError("event %r is not a lock event" % (self,))
        return self.target  # type: ignore[return-value]

    @property
    def variable(self) -> str:
        """The variable accessed; only valid for read/write events."""
        if not self.is_access():
            raise AttributeError("event %r is not an access event" % (self,))
        return self.target  # type: ignore[return-value]

    @property
    def other_thread(self) -> str:
        """The forked/joined thread; only valid for fork/join events."""
        if self.etype not in THREAD_EVENTS:
            raise AttributeError("event %r is not a fork/join event" % (self,))
        return self.target  # type: ignore[return-value]

    def conflicts_with(self, other: "Event") -> bool:
        """Return True when the two events are conflicting (``e1 ~ e2``).

        Conflicting means: accesses to the same variable, by different
        threads, at least one of which is a write (Section 2.1).
        """
        if not (self.is_access() and other.is_access()):
            return False
        if self.thread == other.thread:
            return False
        if self.variable != other.variable:
            return False
        return self.is_write() or other.is_write()

    def location(self) -> str:
        """Return the program location, falling back to a synthesised one."""
        if self.loc is not None:
            return self.loc
        return "%s:%s(%s)@%d" % (self.thread, self.etype.value, self.target, self.index)

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:
        return "Event(%d, %s, %s(%s))" % (
            self.index,
            self.thread,
            self.etype.value,
            self.target if self.target is not None else "",
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.index == other.index
            and self.thread == other.thread
            and self.etype is other.etype
            and self.target == other.target
        )

    def __hash__(self) -> int:
        return hash((self.index, self.thread, self.etype, self.target))
