"""Events.

An event is a single operation performed by a thread.  The paper's formal
model (Section 2.1) uses lock acquire/release and variable read/write
events; the RAPID implementation additionally consumes thread fork/join
events from the RVPredict logger, and we support those too (they induce
happens-before edges between the forking/forked and joined/joining
threads).  The extended vocabulary (reader/writer locks, barriers,
wait/notify) is declared in :mod:`repro.trace.semantics`; this module
re-exports the :class:`EventType` enum and the derived classification
sets from there, so the registry stays the single source of truth.

Every event may carry an optional *program location* (``loc``), a string
identifying the source line that produced it.  Race pairs are reported as
unordered pairs of program locations, exactly as in the paper's Table 1
("distinct race pairs ... of program locations").
"""

from __future__ import annotations

from typing import Optional

from repro.trace.semantics import (
    ACCESS_EVENTS,
    BARRIER_EVENTS,
    LOCK_EVENTS,
    OPERAND_ERRORS,
    REGISTRY,
    THREAD_EVENTS,
    EventType,
)

__all__ = [
    "Event", "EventType",
    "LOCK_EVENTS", "ACCESS_EVENTS", "THREAD_EVENTS", "BARRIER_EVENTS",
]


class Event:
    """A single trace event.

    Parameters
    ----------
    index:
        Zero-based position of the event in its trace.  Assigned by
        :class:`repro.trace.trace.Trace`; builders may pass ``-1`` and let
        the trace renumber.
    thread:
        Identifier of the performing thread (``t(e)`` in the paper).
    etype:
        The :class:`EventType`.
    target:
        The object operated on: a lock name for lock events (including
        rwlock and wait/notify events), a variable name for read/write, the
        child/peer thread for fork/join, a barrier name for barrier events,
        ``None`` for begin/end.  Arity is validated against the event
        kind's declared operand in :data:`repro.trace.semantics.REGISTRY`.
    loc:
        Optional program location (source line) used for race de-duplication.
    tid:
        Optional interned integer id of ``thread``, stamped at the
        trace/parser/source boundary by a
        :class:`~repro.vectorclock.registry.ThreadRegistry` so detectors
        can skip per-event string hashing.  ``None`` means "not interned";
        the field is a cache and takes no part in equality or hashing.
    """

    __slots__ = ("index", "thread", "etype", "target", "loc", "tid")

    def __init__(
        self,
        index: int,
        thread: str,
        etype: EventType,
        target: Optional[str] = None,
        loc: Optional[str] = None,
        tid: Optional[int] = None,
    ) -> None:
        if target is None:
            operand = REGISTRY[etype].operand
            if operand is not None:
                raise ValueError(OPERAND_ERRORS[operand])
        self.index = index
        self.thread = thread
        self.etype = etype
        self.target = target
        self.loc = loc
        self.tid = tid

    # ------------------------------------------------------------------ #
    # Classification helpers
    # ------------------------------------------------------------------ #

    def is_acquire(self) -> bool:
        """Return True for lock-acquire events."""
        return self.etype is EventType.ACQUIRE

    def is_release(self) -> bool:
        """Return True for lock-release events."""
        return self.etype is EventType.RELEASE

    def is_read(self) -> bool:
        """Return True for variable-read events."""
        return self.etype is EventType.READ

    def is_write(self) -> bool:
        """Return True for variable-write events."""
        return self.etype is EventType.WRITE

    def is_access(self) -> bool:
        """Return True for read or write events."""
        return self.etype in ACCESS_EVENTS

    def is_lock_event(self) -> bool:
        """Return True for events operating on a lock (acquire/release,
        rwlock and wait/notify events)."""
        return self.etype in LOCK_EVENTS

    def is_fork(self) -> bool:
        """Return True for fork events."""
        return self.etype is EventType.FORK

    def is_join(self) -> bool:
        """Return True for join events."""
        return self.etype is EventType.JOIN

    def is_barrier(self) -> bool:
        """Return True for barrier events."""
        return self.etype is EventType.BARRIER

    @property
    def lock(self) -> str:
        """The lock operated on (``l(e)``); only valid for lock events."""
        if not self.is_lock_event():
            raise AttributeError("event %r is not a lock event" % (self,))
        return self.target  # type: ignore[return-value]

    @property
    def variable(self) -> str:
        """The variable accessed; only valid for read/write events."""
        if not self.is_access():
            raise AttributeError("event %r is not an access event" % (self,))
        return self.target  # type: ignore[return-value]

    @property
    def other_thread(self) -> str:
        """The forked/joined thread; only valid for fork/join events."""
        if self.etype not in THREAD_EVENTS:
            raise AttributeError("event %r is not a fork/join event" % (self,))
        return self.target  # type: ignore[return-value]

    @property
    def barrier(self) -> str:
        """The barrier arrived at; only valid for barrier events."""
        if self.etype not in BARRIER_EVENTS:
            raise AttributeError("event %r is not a barrier event" % (self,))
        return self.target  # type: ignore[return-value]

    def conflicts_with(self, other: "Event") -> bool:
        """Return True when the two events are conflicting (``e1 ~ e2``).

        Conflicting means: accesses to the same variable, by different
        threads, at least one of which is a write (Section 2.1).
        """
        if not (self.is_access() and other.is_access()):
            return False
        if self.thread == other.thread:
            return False
        if self.variable != other.variable:
            return False
        return self.is_write() or other.is_write()

    def location(self) -> str:
        """Return the program location, falling back to a synthesised one."""
        if self.loc is not None:
            return self.loc
        return "%s:%s(%s)@%d" % (self.thread, self.etype.value, self.target, self.index)

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:
        return "Event(%d, %s, %s(%s))" % (
            self.index,
            self.thread,
            self.etype.value,
            self.target if self.target is not None else "",
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.index == other.index
            and self.thread == other.thread
            and self.etype is other.etype
            and self.target == other.target
        )

    def __hash__(self) -> int:
        return hash((self.index, self.thread, self.etype, self.target))
