"""The :class:`Trace` container.

A trace (Section 2.1) is a sequence of events satisfying two properties:

1. *lock semantics* -- critical sections over the same lock do not overlap:
   between two acquires of the same lock there is a release by the first
   acquiring thread;
2. *well nestedness* -- critical sections of a single thread are properly
   nested.

:class:`Trace` validates both properties on construction (validation can be
disabled for performance when the producer is trusted, e.g. the benchmark
generators) and precomputes the per-event metadata the detectors need:

* ``match`` of each acquire/release,
* the set of locks held at each event (``e in l``),
* the set of variables read/written inside each critical section,
* per-thread and per-variable event indices.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.trace.event import Event
from repro.trace.semantics import (
    BARRIER_EVENTS,
    REGISTRY,
    THREAD_EVENTS,
    LockDiscipline,
    LockSemanticsError,
    TraceError,
    WellNestednessError,
)
from repro.vectorclock.registry import ThreadRegistry

# Re-exported for backward compatibility: the error classes are defined in
# :mod:`repro.trace.semantics` (next to the shared LockDiscipline state
# machine that raises them) but have always been importable from here.
__all__ = [
    "Trace", "TraceError", "LockSemanticsError", "WellNestednessError",
]


class Trace:
    """An immutable, validated sequence of :class:`~repro.trace.event.Event`.

    A trace is *complete*: the whole event sequence is materialised and may
    be iterated any number of times (``is_complete`` is the protocol flag
    detectors check before pre-scanning; the streaming engine's contexts
    set it to False).

    Parameters
    ----------
    events:
        The events in program (temporal) order.  Events are re-indexed so
        that ``trace[i].index == i``.
    validate:
        When True (default) check lock semantics and well nestedness and
        raise :class:`LockSemanticsError` / :class:`WellNestednessError` on
        violation.
    name:
        Optional human-readable name used in reports.
    registry:
        Optional :class:`~repro.vectorclock.registry.ThreadRegistry` to
        intern thread identifiers into (a fresh one is created otherwise).
        Every event is stamped with its interned ``tid`` during indexing;
        events that already carry a *conflicting* tid (stamped by a
        different registry) are replaced by fresh copies so the original
        producer's stamps stay intact.
    """

    #: A materialised trace can always be re-iterated / pre-scanned.
    is_complete = True

    def __init__(
        self,
        events: Iterable[Event],
        validate: bool = True,
        name: Optional[str] = None,
        registry: Optional[ThreadRegistry] = None,
    ) -> None:
        self.name = name or "trace"
        self.registry = registry if registry is not None else ThreadRegistry()
        intern = self.registry.intern
        self._events: List[Event] = []
        for position, event in enumerate(events):
            tid = intern(event.thread)
            if event.index != position or (
                event.tid is not None and event.tid != tid
            ):
                event = Event(
                    position, event.thread, event.etype, event.target,
                    event.loc, tid=tid,
                )
            else:
                event.tid = tid
            self._events.append(event)

        self._threads: List[str] = []
        self._locks: List[str] = []
        self._variables: List[str] = []
        self._barriers: List[str] = []
        self._by_thread: Dict[str, List[int]] = defaultdict(list)
        self._match: Dict[int, Optional[int]] = {}
        self._held_locks: List[Tuple[str, ...]] = []
        self._acquire_of_lock_at: List[Dict[str, int]] = []
        self._census: Dict[str, int] = {}

        self._index(validate)

    # ------------------------------------------------------------------ #
    # Indexing / validation
    # ------------------------------------------------------------------ #

    def _index(self, validate: bool) -> None:
        seen_threads: Dict[str, None] = {}
        seen_locks: Dict[str, None] = {}
        seen_vars: Dict[str, None] = {}
        seen_barriers: Dict[str, None] = {}
        census: Dict[str, int] = {}

        # The shared lock-semantics / well-nestedness state machine; the
        # streaming OnlineValidator drives the identical machine, so both
        # paths raise the same exception class and message by construction.
        discipline = LockDiscipline()

        for event in self._events:
            thread = event.thread
            etype = event.etype
            seen_threads.setdefault(thread, None)
            self._by_thread[thread].append(event.index)
            census[etype.value] = census.get(etype.value, 0) + 1

            if event.is_access():
                seen_vars.setdefault(event.variable, None)
            elif event.is_lock_event():
                seen_locks.setdefault(event.lock, None)
            elif etype in THREAD_EVENTS:
                seen_threads.setdefault(event.other_thread, None)
            elif etype in BARRIER_EVENTS:
                seen_barriers.setdefault(event.barrier, None)

            # Locks currently held by this thread (innermost last).
            # Read-mode rwlock sections participate in nestedness checking
            # but do not confer mutual exclusion, so they are excluded from
            # ``held_locks`` (the detectors' rule (a)/(b) machinery).
            sections = discipline.open_sections(thread)
            held = tuple(lock for lock, _, mode in sections if mode != "read")
            self._held_locks.append(held)
            self._acquire_of_lock_at.append(
                {lock: i for lock, i, mode in sections if mode != "read"}
            )

            result = discipline.step(
                etype, thread, event.target, event.index, validate
            )
            if result is None:
                continue
            action = result[0]
            if action == "open":
                self._match[event.index] = None
                if result[1] != "read":
                    # The acquire itself is inside its own critical section.
                    self._held_locks[-1] = held + (event.target,)
                    self._acquire_of_lock_at[-1][event.target] = event.index
            elif action == "close":
                self._match[result[1]] = event.index
                self._match[event.index] = result[1]
                # The release is still inside its own critical section: the
                # pre-step ``held``/``_acquire_of_lock_at`` snapshots above
                # already include the section being closed.
            else:  # "unmatched" (best-effort, validate=False only)
                self._match[event.index] = None

        self._threads = list(seen_threads)
        self._locks = list(seen_locks)
        self._variables = list(seen_vars)
        self._barriers = list(seen_barriers)
        self._census = census

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    @property
    def events(self) -> Sequence[Event]:
        """The events in temporal order."""
        return self._events

    @property
    def threads(self) -> List[str]:
        """Thread identifiers in order of first appearance."""
        return list(self._threads)

    @property
    def locks(self) -> List[str]:
        """Lock identifiers in order of first appearance."""
        return list(self._locks)

    @property
    def variables(self) -> List[str]:
        """Variable identifiers in order of first appearance."""
        return list(self._variables)

    @property
    def barriers(self) -> List[str]:
        """Barrier identifiers in order of first appearance."""
        return list(self._barriers)

    def thread_events(self, thread: str) -> List[Event]:
        """Return the projection of the trace onto ``thread`` (sigma|t)."""
        return [self._events[i] for i in self._by_thread.get(thread, [])]

    def thread_indices(self, thread: str) -> List[int]:
        """Return the indices of events performed by ``thread``."""
        return list(self._by_thread.get(thread, []))

    # ------------------------------------------------------------------ #
    # Lock structure
    # ------------------------------------------------------------------ #

    def match(self, event: Event) -> Optional[Event]:
        """Return the matching release of an acquire (or vice versa).

        Returns None when the matching event does not exist in the trace
        (e.g. a lock held until the end of the recorded execution).
        """
        partner = self._match.get(event.index)
        if partner is None:
            return None
        return self._events[partner]

    def held_locks(self, event: Event) -> Tuple[str, ...]:
        """Return the locks whose critical sections contain ``event``.

        The acquire and release of a critical section are both considered
        contained in it (``e in l`` in the paper's notation).
        """
        return self._held_locks[event.index]

    def enclosing_acquire(self, event: Event, lock: str) -> Optional[Event]:
        """Return the acquire of ``lock`` whose critical section contains ``event``."""
        acquire_index = self._acquire_of_lock_at[event.index].get(lock)
        if acquire_index is None:
            return None
        return self._events[acquire_index]

    def critical_section(self, event: Event) -> List[Event]:
        """Return the events of the critical section started/ended at ``event``.

        ``event`` must open or close a critical section (acquire/release,
        including their rwlock and wait counterparts).  When the matching
        release is absent (the lock is never released), the critical section
        extends to the end of the thread.
        """
        semantics = REGISTRY[event.etype]
        if semantics.opens is None and semantics.closes is None:
            raise ValueError("critical_section expects an acquire or release event")
        if semantics.opens is not None:
            acquire = event
            release = self.match(event)
        else:
            release = event
            acquire = self.match(event)
            if acquire is None:
                raise TraceError(
                    "release at %d has no matching acquire" % event.index
                )
        thread_idx = self._by_thread[acquire.thread]
        start = acquire.index
        end = release.index if release is not None else self._events[-1].index
        return [
            self._events[i]
            for i in thread_idx
            if start <= i <= end
        ]

    def section_accesses(self, release: Event) -> Tuple[Set[str], Set[str]]:
        """Return (read variables, written variables) of ``release``'s critical section."""
        reads: Set[str] = set()
        writes: Set[str] = set()
        for section_event in self.critical_section(release):
            if section_event.is_read():
                reads.add(section_event.variable)
            elif section_event.is_write():
                writes.add(section_event.variable)
        return reads, writes

    # ------------------------------------------------------------------ #
    # Access structure
    # ------------------------------------------------------------------ #

    def accesses(self, variable: str) -> List[Event]:
        """Return all read/write events on ``variable`` in temporal order."""
        return [
            event for event in self._events
            if event.is_access() and event.variable == variable
        ]

    def last_write_before(self, event: Event) -> Optional[Event]:
        """Return the last write to ``event.variable`` strictly before ``event``."""
        if not event.is_access():
            raise ValueError("last_write_before expects a read/write event")
        variable = event.variable
        for i in range(event.index - 1, -1, -1):
            candidate = self._events[i]
            if candidate.is_write() and candidate.variable == variable:
                return candidate
        return None

    def conflicting_pairs(self) -> Iterator[Tuple[Event, Event]]:
        """Yield all conflicting pairs (e1, e2) with e1 earlier than e2.

        Quadratic in the number of accesses per variable; intended for small
        traces (tests, examples), not for the streaming detectors.
        """
        by_variable: Dict[str, List[Event]] = defaultdict(list)
        for event in self._events:
            if event.is_access():
                by_variable[event.variable].append(event)
        for events in by_variable.values():
            for i, first in enumerate(events):
                for second in events[i + 1:]:
                    if first.conflicts_with(second):
                        yield first, second

    # ------------------------------------------------------------------ #
    # Slicing / transformation
    # ------------------------------------------------------------------ #

    def window(self, start: int, size: int) -> "Trace":
        """Return the sub-trace of ``size`` events starting at ``start``.

        Windowed sub-traces may violate lock semantics at their boundaries
        (an acquire without its release, or vice versa); validation is
        therefore disabled, matching how windowed tools treat fragments.
        """
        chunk = self._events[start:start + size]
        return Trace(
            [Event(-1, e.thread, e.etype, e.target, e.loc) for e in chunk],
            validate=False,
            name="%s[%d:%d]" % (self.name, start, start + size),
        )

    def windows(self, size: int) -> Iterator["Trace"]:
        """Yield consecutive non-overlapping windows of ``size`` events."""
        for start in range(0, len(self._events), size):
            yield self.window(start, size)

    def stats(self) -> Dict[str, int]:
        """Return basic counts (events, threads, locks, variables, accesses)."""
        accesses = sum(1 for e in self._events if e.is_access())
        return {
            "events": len(self._events),
            "threads": len(self._threads),
            "locks": len(self._locks),
            "variables": len(self._variables),
            "accesses": accesses,
        }

    def census(self) -> Dict[str, int]:
        """Return the per-event-type census (canonical token -> count).

        Only event kinds that actually occur appear; computed during
        indexing, so this is O(1) per call.
        """
        return dict(self._census)

    def __repr__(self) -> str:
        return "Trace(%r, events=%d, threads=%d, locks=%d)" % (
            self.name, len(self._events), len(self._threads), len(self._locks)
        )
