"""Declarative event semantics: one registry driving the whole stack.

Historically, per-event-type behaviour was scattered as ``etype``
if-chains and frozensets across six layers: the parsers (wire tokens),
``Event`` construction (operand arity), ``Trace._index`` and the online
validator (lock-semantics checks), the three detectors (clock rules),
the stream partitioner (replicate/route taxonomy) and the CLI.  Adding
an event kind meant touching all of them and hoping nothing was missed.

This module is the single source of truth.  Every :class:`EventType`
has exactly one :class:`EventSemantics` entry declaring:

``tokens``
    The wire spellings accepted by every parser (first one canonical;
    it equals ``EventType.value`` so codec/STD round-trips are free).
``operand``
    What the target names (``"lock"``/``"variable"``/``"thread"``/
    ``"barrier"``/None) -- drives ``Event`` arity validation, parser
    operand checks and the derived ``LOCK_EVENTS``/``ACCESS_EVENTS``/
    ``THREAD_EVENTS`` sets.
``clock_action``
    A label for the detector-side rule (acquire-like, release-like,
    access-like, barrier, wait, notify, none).  Detectors are tested to
    dispatch on every registered kind; this field documents which rule
    family they must apply.
``shard_class``
    ``"route"`` (partitioned to an owner shard by variable) or
    ``"replicate"`` (part of the synchronization skeleton every shard
    replays) -- the partitioner derives its taxonomy from this plus the
    ``opens``/``closes``/``bumps`` structure below.
``role``
    The lock-discipline transition the validator applies (None for
    events with no lock-discipline obligations).
``opens`` / ``closes``
    Critical-section structure: what kind of section the event opens
    (``"excl"``/``"write"``/``"read"``) or closes (``"excl"`` for
    ``rel``, ``"rw"`` for ``rrel``).
``bumps``
    Which local clock the event's epilogue bumps (``"self"`` for
    release-like events, ``"target"`` for join, None otherwise) --
    exactly the "pending bump" set the partitioner must track so
    accesses that carry a deferred bump are routed with clock state.

The extended vocabulary (beyond the paper's acq/rel/r/w/fork/join):

* **rwlocks** ``racq_r``/``racq_w``/``rrel`` -- read-sections do not
  order each other; write-sections behave exactly like today's locks.
* **barriers** ``barrier`` -- all-to-all join at each generation: a
  generation closes when some participant arrives *again*, at which
  point every participant of the closed generation receives the join of
  all arrival clocks.
* **wait/notify** ``wait``/``notify`` -- producers desugar a wait into
  ``rel(m)`` at wait-start and ``wait(m)`` at wake (the RVPredict
  convention); ``wait`` re-acquires the monitor and additionally
  receives a hard edge from every prior ``notify(m)``.

:class:`LockDiscipline` is the shared lock-semantics / well-nestedness
state machine consumed by both ``Trace._index`` and the streaming
``OnlineValidator`` -- the two paths raise identical exception classes
and messages by construction.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple


class TraceError(ValueError):
    """Base class for trace well-formedness violations."""


class LockSemanticsError(TraceError):
    """Raised when two critical sections over the same lock overlap."""


class WellNestednessError(TraceError):
    """Raised when critical sections of a thread are not properly nested."""


class EventType(enum.Enum):
    """The kind of operation an event performs."""

    ACQUIRE = "acq"
    RELEASE = "rel"
    READ = "r"
    WRITE = "w"
    FORK = "fork"
    JOIN = "join"
    BEGIN = "begin"
    END = "end"
    # Extended vocabulary (reader/writer locks, barriers, wait/notify).
    RACQ_R = "racq_r"
    RACQ_W = "racq_w"
    RREL = "rrel"
    BARRIER = "barrier"
    WAIT = "wait"
    NOTIFY = "notify"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class EventSemantics:
    """The declarative description of one event kind (see module docs)."""

    __slots__ = (
        "etype", "tokens", "operand", "clock_action", "shard_class",
        "role", "opens", "closes", "bumps",
    )

    def __init__(
        self,
        etype: EventType,
        tokens: Tuple[str, ...],
        operand: Optional[str],
        clock_action: str,
        shard_class: str,
        role: Optional[str] = None,
        opens: Optional[str] = None,
        closes: Optional[str] = None,
        bumps: Optional[str] = None,
    ) -> None:
        self.etype = etype
        self.tokens = tokens
        self.operand = operand
        self.clock_action = clock_action
        self.shard_class = shard_class
        self.role = role
        self.opens = opens
        self.closes = closes
        self.bumps = bumps

    @property
    def token(self) -> str:
        """The canonical wire spelling (== ``etype.value``)."""
        return self.tokens[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "EventSemantics(%s, operand=%r, clock=%r, shard=%r)" % (
            self.etype.value, self.operand, self.clock_action, self.shard_class,
        )


#: etype -> semantics.  The one table everything else derives from.
REGISTRY: Dict[EventType, EventSemantics] = {
    sem.etype: sem
    for sem in (
        EventSemantics(
            EventType.ACQUIRE, ("acq", "acquire", "lock"), "lock",
            clock_action="acquire", shard_class="replicate",
            role="acquire", opens="excl",
        ),
        EventSemantics(
            EventType.RELEASE, ("rel", "release", "unlock"), "lock",
            clock_action="release", shard_class="replicate",
            role="release", closes="excl", bumps="self",
        ),
        EventSemantics(
            EventType.READ, ("r", "read"), "variable",
            clock_action="access", shard_class="route",
        ),
        EventSemantics(
            EventType.WRITE, ("w", "write"), "variable",
            clock_action="access", shard_class="route",
        ),
        EventSemantics(
            EventType.FORK, ("fork",), "thread",
            clock_action="fork", shard_class="replicate", bumps="self",
        ),
        EventSemantics(
            EventType.JOIN, ("join",), "thread",
            clock_action="join", shard_class="replicate", bumps="target",
        ),
        EventSemantics(
            EventType.BEGIN, ("begin",), None,
            clock_action="none", shard_class="replicate",
        ),
        EventSemantics(
            EventType.END, ("end",), None,
            clock_action="none", shard_class="replicate",
        ),
        EventSemantics(
            EventType.RACQ_R, ("racq_r", "read_acquire", "rdlock"), "lock",
            clock_action="read-acquire", shard_class="replicate",
            role="read-acquire", opens="read",
        ),
        EventSemantics(
            EventType.RACQ_W, ("racq_w", "write_acquire", "wrlock"), "lock",
            clock_action="write-acquire", shard_class="replicate",
            role="write-acquire", opens="write",
        ),
        EventSemantics(
            EventType.RREL, ("rrel", "rw_release", "rwunlock"), "lock",
            clock_action="rw-release", shard_class="replicate",
            role="rw-release", closes="rw", bumps="self",
        ),
        EventSemantics(
            EventType.BARRIER, ("barrier", "barrier_wait"), "barrier",
            clock_action="barrier", shard_class="replicate", bumps="self",
        ),
        EventSemantics(
            EventType.WAIT, ("wait",), "lock",
            clock_action="wait", shard_class="replicate",
            role="acquire", opens="excl",
        ),
        EventSemantics(
            EventType.NOTIFY, ("notify", "signal"), "lock",
            clock_action="notify", shard_class="replicate", bumps="self",
        ),
    )
}

assert set(REGISTRY) == set(EventType), "every EventType needs a registry entry"


def _derive(operand: str) -> "frozenset[EventType]":
    return frozenset(e for e, sem in REGISTRY.items() if sem.operand == operand)


#: Event types that operate on a lock (incl. rwlocks and monitors).
LOCK_EVENTS = _derive("lock")

#: Event types that access a shared variable.
ACCESS_EVENTS = _derive("variable")

#: Event types that reference another thread.
THREAD_EVENTS = _derive("thread")

#: Event types that operate on a barrier.
BARRIER_EVENTS = _derive("barrier")

#: The paper's original six-event vocabulary plus begin/end markers.
CORE_VOCABULARY = frozenset({
    EventType.ACQUIRE, EventType.RELEASE, EventType.READ, EventType.WRITE,
    EventType.FORK, EventType.JOIN, EventType.BEGIN, EventType.END,
})

#: Event types whose processing moves vector clocks (the sync skeleton).
MOVES_CLOCKS = frozenset(
    e for e, sem in REGISTRY.items()
    if sem.shard_class == "replicate" and sem.clock_action != "none"
)

#: Event types whose epilogue bumps a local clock (release-like events);
#: the partitioner mirrors this as its "pending bump" set.
BUMPS_CLOCK = frozenset(e for e, sem in REGISTRY.items() if sem.bumps is not None)


def _build_token_map() -> Dict[str, EventType]:
    tokens: Dict[str, EventType] = {}
    for sem in REGISTRY.values():
        for token in sem.tokens:
            if token in tokens:  # pragma: no cover - defensive
                raise ValueError("duplicate wire token %r" % token)
            tokens[token] = sem.etype
    return tokens


#: Wire token (lower-case) -> EventType, for every accepted spelling.
TOKEN_TO_ETYPE = _build_token_map()

assert all(
    sem.token == sem.etype.value for sem in REGISTRY.values()
), "canonical tokens must round-trip through EventType.value"


#: operand kind -> Event-construction error message.
OPERAND_ERRORS = {
    "lock": "lock events require a lock target",
    "variable": "read/write events require a variable target",
    "thread": "fork/join events require a thread target",
    "barrier": "barrier events require a barrier target",
}

#: validator role -> the verb quoted in release-side error messages.
_CLOSE_VERBS = {"release": "release", "rw-release": "rwlock release"}

#: validator role -> the modes it may close.
_CLOSE_MODES = {"release": ("excl",), "rw-release": ("read", "write")}

#: section mode -> human label used in wrong-release-kind messages.
_MODE_LABELS = {"excl": "mutex", "read": "read-lock", "write": "write-lock"}


class LockDiscipline:
    """The shared lock-semantics / well-nestedness state machine.

    Both ``Trace._index`` (batch validation) and the streaming
    ``OnlineValidator`` drive one of these, so the two paths raise the
    identical exception class and message for the same violation --
    deduplicating what used to be two hand-synchronised copies of the
    checks.

    State:

    ``holder``
        lock -> ``(thread, open position)`` for locks held exclusively
        (``acq``, ``wait`` or ``racq_w``);
    ``read_holders``
        lock -> ``{thread: open position}`` for read-mode holders;
    ``open``
        thread -> stack of ``(lock, open position, mode)`` open
        sections, innermost last, where mode is ``"excl"``/``"read"``/
        ``"write"``.  A thread's entry is removed as soon as its stack
        empties, so lock-free stream suffixes hold zero state.

    :meth:`step` returns what happened structurally -- ``("open",
    mode)``, ``("close", open_position, mode)`` or ``("unmatched",
    None, None)`` for the best-effort non-validating path -- and None
    for event kinds with no lock-discipline role.
    """

    __slots__ = ("holder", "read_holders", "open")

    def __init__(self) -> None:
        self.holder: Dict[str, Tuple[str, int]] = {}
        self.read_holders: Dict[str, Dict[str, int]] = {}
        self.open: Dict[str, List[Tuple[str, int, str]]] = {}

    # ------------------------------------------------------------------ #
    # Transitions
    # ------------------------------------------------------------------ #

    def step(
        self,
        etype: EventType,
        thread: str,
        lock: Optional[str],
        index: int,
        validate: bool = True,
    ) -> Optional[Tuple]:
        """Apply one event; raises on the first violation when validating."""
        role = REGISTRY[etype].role
        if role is None:
            return None
        if role == "acquire":
            return self._open_excl(thread, lock, index, validate, verb="acquired")
        if role == "write-acquire":
            return self._open_write(thread, lock, index, validate)
        if role == "read-acquire":
            return self._open_read(thread, lock, index, validate)
        return self._close(role, thread, lock, index, validate)

    def _open_excl(self, thread, lock, index, validate, verb):
        if validate:
            held = self.holder.get(lock)
            if held is not None:
                if held[0] != thread:
                    raise LockSemanticsError(
                        "lock %r %s at event %d while held by thread %r "
                        "(acquired at event %d)"
                        % (lock, verb, index, held[0], held[1])
                    )
                raise LockSemanticsError(
                    "re-entrant %s of lock %r at event %d; re-entrant "
                    "locking must be flattened by the trace producer"
                    % ("acquire" if verb == "acquired" else "write-acquire",
                       lock, index)
                )
            readers = self.read_holders.get(lock)
            if readers:
                rthread, rindex = next(iter(readers.items()))
                raise LockSemanticsError(
                    "lock %r %s at event %d while read-held by thread %r "
                    "(read-acquired at event %d)"
                    % (lock, verb, index, rthread, rindex)
                )
        mode = "excl" if verb == "acquired" else "write"
        self.holder[lock] = (thread, index)
        self.open.setdefault(thread, []).append((lock, index, mode))
        return ("open", mode)

    def _open_write(self, thread, lock, index, validate):
        return self._open_excl(thread, lock, index, validate, verb="write-acquired")

    def _open_read(self, thread, lock, index, validate):
        if validate:
            held = self.holder.get(lock)
            if held is not None:
                raise LockSemanticsError(
                    "lock %r read-acquired at event %d while held by thread "
                    "%r (acquired at event %d)"
                    % (lock, index, held[0], held[1])
                )
            readers = self.read_holders.get(lock)
            if readers is not None and thread in readers:
                raise LockSemanticsError(
                    "re-entrant read-acquire of lock %r at event %d; "
                    "re-entrant locking must be flattened by the trace "
                    "producer" % (lock, index)
                )
        self.read_holders.setdefault(lock, {})[thread] = index
        self.open.setdefault(thread, []).append((lock, index, "read"))
        return ("open", "read")

    def _close(self, role, thread, lock, index, validate):
        verb = _CLOSE_VERBS[role]
        modes = _CLOSE_MODES[role]
        stack = self.open.get(thread)
        if not stack:
            if validate:
                raise LockSemanticsError(
                    "%s of %r at event %d with no lock held" % (verb, lock, index)
                )
            return ("unmatched", None, None)
        top_lock, top_index, top_mode = stack[-1]
        if top_lock != lock or top_mode not in modes:
            if validate:
                if top_lock != lock:
                    raise WellNestednessError(
                        "%s of %r at event %d does not match innermost "
                        "open acquire of %r at event %d"
                        % (verb, lock, index, top_lock, top_index)
                    )
                raise WellNestednessError(
                    "%s of %r at event %d closes the %s section opened at "
                    "event %d (wrong release kind)"
                    % (verb, lock, index, _MODE_LABELS[top_mode], top_index)
                )
            # Best-effort: find a closable open section of this lock anywhere.
            found = None
            for entry in reversed(stack):
                if entry[0] == lock and entry[2] in modes:
                    found = entry
                    break
            if found is not None:
                stack.remove(found)
                if not stack:
                    del self.open[thread]
                self._drop_holder(lock, thread, found[2])
            self.holder.pop(lock, None)
            if found is not None:
                return ("close", found[1], found[2])
            return ("unmatched", None, None)
        stack.pop()
        if not stack:
            del self.open[thread]
        self._drop_holder(lock, thread, top_mode)
        return ("close", top_index, top_mode)

    def _drop_holder(self, lock, thread, mode):
        if mode == "read":
            readers = self.read_holders.get(lock)
            if readers is not None:
                readers.pop(thread, None)
                if not readers:
                    del self.read_holders[lock]
        else:
            self.holder.pop(lock, None)

    # ------------------------------------------------------------------ #
    # Introspection / snapshot helpers
    # ------------------------------------------------------------------ #

    def open_sections(self, thread: str) -> List[Tuple[str, int, str]]:
        """The thread's open sections, innermost last (empty when none)."""
        return self.open.get(thread, [])

    def state_size(self) -> int:
        """Entries currently held; zero on a fully closed stream."""
        return (
            len(self.holder)
            + sum(len(readers) for readers in self.read_holders.values())
            + sum(len(stack) for stack in self.open.values())
        )

    def state_dict(self) -> dict:
        """Codec-encodable state (see ``OnlineValidator.state_dict``)."""
        return {
            "holder": dict(self.holder),
            "open": {thread: list(stack) for thread, stack in self.open.items()},
            "read_holders": {
                lock: dict(readers)
                for lock, readers in self.read_holders.items()
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "LockDiscipline":
        """Inverse of :meth:`state_dict`; accepts pre-rwlock checkpoints
        whose open-stack entries lack the mode field."""
        discipline = cls()
        discipline.holder = {
            lock: tuple(entry) for lock, entry in state["holder"].items()
        }
        discipline.open = {
            thread: [
                tuple(entry) if len(entry) == 3 else (entry[0], entry[1], "excl")
                for entry in stack
            ]
            for thread, stack in state["open"].items()
        }
        discipline.read_holders = {
            lock: dict(readers)
            for lock, readers in state.get("read_holders", {}).items()
        }
        return discipline
