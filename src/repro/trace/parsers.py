"""Trace parsers.

Two on-disk formats are supported:

* **STD** -- the RAPID-compatible one-event-per-line text format::

      t1|acq(l)|42
      t1|r(x)|43
      t2|fork(t3)|44

  Each line is ``thread|operation|location`` where the location field is
  optional.  Blank lines and lines starting with ``#`` are ignored.

* **CSV** -- ``thread,etype,target,loc`` with a header row.

:func:`load_trace` dispatches on the file extension (``.std``/``.txt`` vs
``.csv``).
"""

from __future__ import annotations

import csv
import io
import re
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.trace.event import Event, EventType
from repro.trace.trace import Trace

_OP_PATTERN = re.compile(r"^\s*(\w+)\s*\(\s*([^)]*?)\s*\)\s*$")

_OP_NAMES = {
    "acq": EventType.ACQUIRE,
    "acquire": EventType.ACQUIRE,
    "lock": EventType.ACQUIRE,
    "rel": EventType.RELEASE,
    "release": EventType.RELEASE,
    "unlock": EventType.RELEASE,
    "r": EventType.READ,
    "read": EventType.READ,
    "w": EventType.WRITE,
    "write": EventType.WRITE,
    "fork": EventType.FORK,
    "join": EventType.JOIN,
    "begin": EventType.BEGIN,
    "end": EventType.END,
}


class TraceParseError(ValueError):
    """Raised when a trace file cannot be parsed."""


def _parse_operation(text: str, line_number: int) -> "tuple[EventType, Optional[str]]":
    text = text.strip()
    match = _OP_PATTERN.match(text)
    if match:
        name, argument = match.group(1).lower(), match.group(2) or None
    else:
        name, argument = text.lower(), None
    if name not in _OP_NAMES:
        raise TraceParseError(
            "line %d: unknown operation %r" % (line_number, text)
        )
    return _OP_NAMES[name], argument


def parse_std(source: Union[str, Iterable[str]], name: Optional[str] = None,
              validate: bool = True) -> Trace:
    """Parse the STD text format from a string or an iterable of lines."""
    if isinstance(source, str):
        lines: Iterable[str] = io.StringIO(source)
    else:
        lines = source
    events: List[Event] = []
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = [part.strip() for part in line.split("|")]
        if len(parts) < 2:
            raise TraceParseError(
                "line %d: expected 'thread|op(arg)[|loc]', got %r" % (line_number, raw)
            )
        thread = parts[0]
        etype, target = _parse_operation(parts[1], line_number)
        loc = parts[2] if len(parts) > 2 and parts[2] else None
        events.append(Event(len(events), thread, etype, target, loc))
    return Trace(events, validate=validate, name=name)


def parse_csv(source: Union[str, Iterable[str]], name: Optional[str] = None,
              validate: bool = True) -> Trace:
    """Parse the CSV format (``thread,etype,target,loc`` with header)."""
    if isinstance(source, str):
        handle: Iterable[str] = io.StringIO(source)
    else:
        handle = source
    reader = csv.DictReader(handle)
    events: List[Event] = []
    for row_number, row in enumerate(reader, start=2):
        if row.get("thread") is None or row.get("etype") is None:
            raise TraceParseError("row %d: missing thread/etype column" % row_number)
        etype_name = row["etype"].strip().lower()
        if etype_name not in _OP_NAMES:
            raise TraceParseError(
                "row %d: unknown event type %r" % (row_number, row["etype"])
            )
        target = (row.get("target") or "").strip() or None
        loc = (row.get("loc") or "").strip() or None
        events.append(
            Event(len(events), row["thread"].strip(), _OP_NAMES[etype_name], target, loc)
        )
    return Trace(events, validate=validate, name=name)


def load_trace(path: Union[str, Path], validate: bool = True) -> Trace:
    """Load a trace from ``path``, dispatching on the file extension."""
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".csv":
        return parse_csv(text, name=path.stem, validate=validate)
    return parse_std(text, name=path.stem, validate=validate)
