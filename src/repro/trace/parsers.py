"""Trace parsers.

Four on-disk formats are supported:

* **STD** -- the RAPID-compatible one-event-per-line text format::

      t1|acq(l)|42
      t1|racq_r(rw)|43
      t2|barrier(b0)|44

  Each line is ``thread|operation|location`` where the location field is
  optional.  Blank lines and lines starting with ``#`` are ignored.

* **CSV** -- ``thread,etype,target,loc`` with a header row.

* **mtrace** / **tsan** -- real-trace ingest adapters for kernel-style
  lock logs and a ThreadSanitizer-like format, mapped onto the same
  event vocabulary; see :mod:`repro.trace.adapters`.

Every format resolves wire tokens through the declarative
:data:`repro.trace.semantics.TOKEN_TO_ETYPE` map, so a new event kind
registered in :mod:`repro.trace.semantics` is automatically parseable
everywhere.  Parse errors always name the line (or row) number and the
offending token.

Two layers of entry points:

* the *streaming* layer (:func:`iter_std_events`, :func:`iter_csv_events`,
  :func:`iter_trace_file`) yields :class:`~repro.trace.event.Event`
  objects one at a time without materialising anything -- this is what the
  :class:`~repro.engine.FileSource` feeds to the streaming engine so that
  arbitrarily large logs can be analysed in constant memory;
* the *batch* layer (:func:`parse_std`, :func:`parse_csv`,
  :func:`load_trace`) builds a validated
  :class:`~repro.trace.trace.Trace` on top of the streaming layer.

:func:`load_trace` / :func:`iter_trace_file` dispatch on the file
extension (``.csv``/``.mtrace``/``.tsan`` vs STD) unless an explicit
``format`` is given.
"""

from __future__ import annotations

import csv
import io
import re
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Union

from repro.trace.event import Event, EventType
from repro.trace.semantics import REGISTRY, TOKEN_TO_ETYPE, TraceError
from repro.trace.trace import Trace
from repro.vectorclock.registry import ThreadRegistry

_OP_PATTERN = re.compile(r"^\s*(\w+)\s*\(\s*([^)]*?)\s*\)\s*$")

#: The formats ``--format`` / the extension dispatch understand.
FORMAT_NAMES = ("std", "csv", "mtrace", "tsan")

#: file extension -> format name (anything else parses as STD).
_EXTENSION_FORMATS = {".csv": "csv", ".mtrace": "mtrace", ".tsan": "tsan"}


class TraceParseError(TraceError):
    """Raised when a trace file cannot be parsed.

    A :class:`~repro.trace.semantics.TraceError` subclass: malformed
    input and semantically invalid input surface through one exception
    hierarchy.  Messages are one-line and actionable -- they always name
    the line (or CSV row) number and the offending token.
    """


def _check_operand(
    etype: EventType, target: Optional[str], token: str, where: str
) -> None:
    operand = REGISTRY[etype].operand
    if operand is not None and target is None:
        raise TraceParseError(
            "%s: %r requires a %s operand, e.g. %r"
            % (where, token, operand, "%s(%s0)" % (token, operand[0]))
        )


def _parse_operation(text: str, line_number: int) -> "tuple[EventType, Optional[str]]":
    text = text.strip()
    match = _OP_PATTERN.match(text)
    if match:
        name, argument = match.group(1).lower(), match.group(2) or None
    else:
        name, argument = text.lower(), None
    etype = TOKEN_TO_ETYPE.get(name)
    if etype is None:
        raise TraceParseError(
            "line %d: unknown operation token %r in %r"
            % (line_number, name, text)
        )
    _check_operand(etype, argument, name, "line %d" % line_number)
    return etype, argument


# --------------------------------------------------------------------- #
# Streaming layer
# --------------------------------------------------------------------- #

def parse_std_line(
    raw: str,
    index: int,
    line_number: int = 1,
    registry: Optional[ThreadRegistry] = None,
) -> Optional[Event]:
    """Parse a single STD-format line into an :class:`Event`.

    Returns None for blank lines and ``#`` comments.  ``index`` becomes
    the event's stream position, ``line_number`` is quoted in parse
    errors, and ``registry`` stamps the interned thread ``tid`` exactly
    like the batch entry points.  This is the unit the incremental
    consumers build on: :func:`iter_std_events` for files, the engine's
    :class:`~repro.engine.sources.LineProtocolSource` for live
    socket/pipe streams.
    """
    line = raw.strip()
    if not line or line.startswith("#"):
        return None
    parts = [part.strip() for part in line.split("|")]
    if len(parts) < 2:
        raise TraceParseError(
            "line %d: expected 'thread|op(arg)[|loc]', got %r" % (line_number, raw)
        )
    thread = parts[0]
    etype, target = _parse_operation(parts[1], line_number)
    loc = parts[2] if len(parts) > 2 and parts[2] else None
    return Event(
        index, thread, etype, target, loc,
        tid=registry.intern(thread) if registry is not None else None,
    )


def iter_std_events(
    lines: Iterable[str], registry: Optional[ThreadRegistry] = None
) -> Iterator[Event]:
    """Lazily parse STD-format lines into a stream of events.

    Events are numbered in order of appearance.  Nothing is buffered, so
    this can feed the streaming engine from arbitrarily large log files.
    When a ``registry`` is given, every event is stamped with its interned
    thread ``tid`` at parse time so downstream detectors sharing the
    registry never hash a thread identifier again.
    """
    index = 0
    for line_number, raw in enumerate(lines, start=1):
        event = parse_std_line(raw, index, line_number, registry=registry)
        if event is None:
            continue
        yield event
        index += 1


def iter_csv_events(
    lines: Iterable[str], registry: Optional[ThreadRegistry] = None
) -> Iterator[Event]:
    """Lazily parse CSV-format lines (header row required) into events.

    ``registry`` stamps interned thread tids exactly like
    :func:`iter_std_events`.
    """
    intern = registry.intern if registry is not None else None
    reader = csv.DictReader(lines)
    index = 0
    for row_number, row in enumerate(reader, start=2):
        if row.get("thread") is None or row.get("etype") is None:
            raise TraceParseError("row %d: missing thread/etype column" % row_number)
        etype_name = row["etype"].strip().lower()
        etype = TOKEN_TO_ETYPE.get(etype_name)
        if etype is None:
            raise TraceParseError(
                "row %d: unknown event type token %r" % (row_number, row["etype"])
            )
        target = (row.get("target") or "").strip() or None
        _check_operand(etype, target, etype_name, "row %d" % row_number)
        loc = (row.get("loc") or "").strip() or None
        thread = row["thread"].strip()
        yield Event(
            index, thread, etype, target, loc,
            tid=intern(thread) if intern is not None else None,
        )
        index += 1


def event_iterator(
    format: Optional[str],
) -> Callable[..., Iterator[Event]]:
    """Resolve a format name to its ``(lines, registry=...)`` iterator.

    ``None`` means STD.  The mtrace/tsan adapters are imported lazily so
    the core parser has no import-time dependency on the adapter layer.
    """
    if format in (None, "std"):
        return iter_std_events
    if format == "csv":
        return iter_csv_events
    from repro.trace.adapters import ADAPTERS

    try:
        return ADAPTERS[format]
    except KeyError:
        raise ValueError(
            "unknown trace format %r; available: %s"
            % (format, ", ".join(FORMAT_NAMES))
        )


def detect_format(path: Union[str, Path]) -> str:
    """Return the format implied by ``path``'s extension (STD otherwise)."""
    return _EXTENSION_FORMATS.get(Path(path).suffix.lower(), "std")


def iter_trace_file(
    path: Union[str, Path],
    registry: Optional[ThreadRegistry] = None,
    format: Optional[str] = None,
) -> Iterator[Event]:
    """Lazily stream the events of a trace file, one line at a time.

    The file is opened when iteration starts and closed when the iterator
    is exhausted; at no point is the whole file (or a ``Trace``) held in
    memory.  Dispatches on the file extension like :func:`load_trace`
    unless ``format`` names one of :data:`FORMAT_NAMES`; ``registry``
    stamps interned thread tids at parse time.
    """
    path = Path(path)
    parse_events = event_iterator(format or detect_format(path))
    with path.open("r", newline="") as handle:
        for event in parse_events(handle, registry=registry):
            yield event


# --------------------------------------------------------------------- #
# Batch layer
# --------------------------------------------------------------------- #

def _as_lines(source: Union[str, Iterable[str]]) -> Iterable[str]:
    if isinstance(source, str):
        return io.StringIO(source)
    return source


def parse_std(source: Union[str, Iterable[str]], name: Optional[str] = None,
              validate: bool = True,
              registry: Optional[ThreadRegistry] = None) -> Trace:
    """Parse the STD text format from a string or an iterable of lines."""
    registry = registry if registry is not None else ThreadRegistry()
    return Trace(iter_std_events(_as_lines(source), registry=registry),
                 validate=validate, name=name, registry=registry)


def parse_csv(source: Union[str, Iterable[str]], name: Optional[str] = None,
              validate: bool = True,
              registry: Optional[ThreadRegistry] = None) -> Trace:
    """Parse the CSV format (``thread,etype,target,loc`` with header)."""
    registry = registry if registry is not None else ThreadRegistry()
    return Trace(iter_csv_events(_as_lines(source), registry=registry),
                 validate=validate, name=name, registry=registry)


def load_trace(
    path: Union[str, Path],
    validate: bool = True,
    format: Optional[str] = None,
) -> Trace:
    """Load a trace from ``path``, dispatching on the file extension.

    The file is parsed line by line through the streaming layer, so only
    the event objects (never the raw text) are held in memory.  Pass
    ``format`` (one of :data:`FORMAT_NAMES`) to override the extension
    dispatch -- e.g. to ingest an mtrace-style log from a ``.txt`` file.
    """
    path = Path(path)
    parse_events = event_iterator(format or detect_format(path))
    registry = ThreadRegistry()
    with path.open("r", newline="") as handle:
        return Trace(
            parse_events(handle, registry=registry),
            validate=validate, name=path.stem, registry=registry,
        )
