"""Trace parsers.

Two on-disk formats are supported:

* **STD** -- the RAPID-compatible one-event-per-line text format::

      t1|acq(l)|42
      t1|r(x)|43
      t2|fork(t3)|44

  Each line is ``thread|operation|location`` where the location field is
  optional.  Blank lines and lines starting with ``#`` are ignored.

* **CSV** -- ``thread,etype,target,loc`` with a header row.

Two layers of entry points:

* the *streaming* layer (:func:`iter_std_events`, :func:`iter_csv_events`,
  :func:`iter_trace_file`) yields :class:`~repro.trace.event.Event`
  objects one at a time without materialising anything -- this is what the
  :class:`~repro.engine.FileSource` feeds to the streaming engine so that
  arbitrarily large logs can be analysed in constant memory;
* the *batch* layer (:func:`parse_std`, :func:`parse_csv`,
  :func:`load_trace`) builds a validated
  :class:`~repro.trace.trace.Trace` on top of the streaming layer.

:func:`load_trace` / :func:`iter_trace_file` dispatch on the file
extension (``.std``/``.txt`` vs ``.csv``).
"""

from __future__ import annotations

import csv
import io
import re
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from repro.trace.event import Event, EventType
from repro.trace.trace import Trace
from repro.vectorclock.registry import ThreadRegistry

_OP_PATTERN = re.compile(r"^\s*(\w+)\s*\(\s*([^)]*?)\s*\)\s*$")

_OP_NAMES = {
    "acq": EventType.ACQUIRE,
    "acquire": EventType.ACQUIRE,
    "lock": EventType.ACQUIRE,
    "rel": EventType.RELEASE,
    "release": EventType.RELEASE,
    "unlock": EventType.RELEASE,
    "r": EventType.READ,
    "read": EventType.READ,
    "w": EventType.WRITE,
    "write": EventType.WRITE,
    "fork": EventType.FORK,
    "join": EventType.JOIN,
    "begin": EventType.BEGIN,
    "end": EventType.END,
}


class TraceParseError(ValueError):
    """Raised when a trace file cannot be parsed."""


def _parse_operation(text: str, line_number: int) -> "tuple[EventType, Optional[str]]":
    text = text.strip()
    match = _OP_PATTERN.match(text)
    if match:
        name, argument = match.group(1).lower(), match.group(2) or None
    else:
        name, argument = text.lower(), None
    if name not in _OP_NAMES:
        raise TraceParseError(
            "line %d: unknown operation %r" % (line_number, text)
        )
    return _OP_NAMES[name], argument


# --------------------------------------------------------------------- #
# Streaming layer
# --------------------------------------------------------------------- #

def parse_std_line(
    raw: str,
    index: int,
    line_number: int = 1,
    registry: Optional[ThreadRegistry] = None,
) -> Optional[Event]:
    """Parse a single STD-format line into an :class:`Event`.

    Returns None for blank lines and ``#`` comments.  ``index`` becomes
    the event's stream position, ``line_number`` is quoted in parse
    errors, and ``registry`` stamps the interned thread ``tid`` exactly
    like the batch entry points.  This is the unit the incremental
    consumers build on: :func:`iter_std_events` for files, the engine's
    :class:`~repro.engine.sources.LineProtocolSource` for live
    socket/pipe streams.
    """
    line = raw.strip()
    if not line or line.startswith("#"):
        return None
    parts = [part.strip() for part in line.split("|")]
    if len(parts) < 2:
        raise TraceParseError(
            "line %d: expected 'thread|op(arg)[|loc]', got %r" % (line_number, raw)
        )
    thread = parts[0]
    etype, target = _parse_operation(parts[1], line_number)
    loc = parts[2] if len(parts) > 2 and parts[2] else None
    return Event(
        index, thread, etype, target, loc,
        tid=registry.intern(thread) if registry is not None else None,
    )


def iter_std_events(
    lines: Iterable[str], registry: Optional[ThreadRegistry] = None
) -> Iterator[Event]:
    """Lazily parse STD-format lines into a stream of events.

    Events are numbered in order of appearance.  Nothing is buffered, so
    this can feed the streaming engine from arbitrarily large log files.
    When a ``registry`` is given, every event is stamped with its interned
    thread ``tid`` at parse time so downstream detectors sharing the
    registry never hash a thread identifier again.
    """
    index = 0
    for line_number, raw in enumerate(lines, start=1):
        event = parse_std_line(raw, index, line_number, registry=registry)
        if event is None:
            continue
        yield event
        index += 1


def iter_csv_events(
    lines: Iterable[str], registry: Optional[ThreadRegistry] = None
) -> Iterator[Event]:
    """Lazily parse CSV-format lines (header row required) into events.

    ``registry`` stamps interned thread tids exactly like
    :func:`iter_std_events`.
    """
    intern = registry.intern if registry is not None else None
    reader = csv.DictReader(lines)
    index = 0
    for row_number, row in enumerate(reader, start=2):
        if row.get("thread") is None or row.get("etype") is None:
            raise TraceParseError("row %d: missing thread/etype column" % row_number)
        etype_name = row["etype"].strip().lower()
        if etype_name not in _OP_NAMES:
            raise TraceParseError(
                "row %d: unknown event type %r" % (row_number, row["etype"])
            )
        target = (row.get("target") or "").strip() or None
        loc = (row.get("loc") or "").strip() or None
        thread = row["thread"].strip()
        yield Event(
            index, thread, _OP_NAMES[etype_name], target, loc,
            tid=intern(thread) if intern is not None else None,
        )
        index += 1


def iter_trace_file(
    path: Union[str, Path], registry: Optional[ThreadRegistry] = None
) -> Iterator[Event]:
    """Lazily stream the events of a trace file, one line at a time.

    The file is opened when iteration starts and closed when the iterator
    is exhausted; at no point is the whole file (or a ``Trace``) held in
    memory.  Dispatches on the file extension like :func:`load_trace`;
    ``registry`` stamps interned thread tids at parse time.
    """
    path = Path(path)
    with path.open("r", newline="") as handle:
        if path.suffix.lower() == ".csv":
            parse = iter_csv_events(handle, registry=registry)
        else:
            parse = iter_std_events(handle, registry=registry)
        for event in parse:
            yield event


# --------------------------------------------------------------------- #
# Batch layer
# --------------------------------------------------------------------- #

def _as_lines(source: Union[str, Iterable[str]]) -> Iterable[str]:
    if isinstance(source, str):
        return io.StringIO(source)
    return source


def parse_std(source: Union[str, Iterable[str]], name: Optional[str] = None,
              validate: bool = True,
              registry: Optional[ThreadRegistry] = None) -> Trace:
    """Parse the STD text format from a string or an iterable of lines."""
    registry = registry if registry is not None else ThreadRegistry()
    return Trace(iter_std_events(_as_lines(source), registry=registry),
                 validate=validate, name=name, registry=registry)


def parse_csv(source: Union[str, Iterable[str]], name: Optional[str] = None,
              validate: bool = True,
              registry: Optional[ThreadRegistry] = None) -> Trace:
    """Parse the CSV format (``thread,etype,target,loc`` with header)."""
    registry = registry if registry is not None else ThreadRegistry()
    return Trace(iter_csv_events(_as_lines(source), registry=registry),
                 validate=validate, name=name, registry=registry)


def load_trace(path: Union[str, Path], validate: bool = True) -> Trace:
    """Load a trace from ``path``, dispatching on the file extension.

    The file is parsed line by line through the streaming layer, so only
    the event objects (never the raw text) are held in memory.
    """
    path = Path(path)
    with path.open("r", newline="") as handle:
        if path.suffix.lower() == ".csv":
            return parse_csv(handle, name=path.stem, validate=validate)
        return parse_std(handle, name=path.stem, validate=validate)
