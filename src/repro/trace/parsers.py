"""Trace parsers.

Four on-disk formats are supported:

* **STD** -- the RAPID-compatible one-event-per-line text format::

      t1|acq(l)|42
      t1|racq_r(rw)|43
      t2|barrier(b0)|44

  Each line is ``thread|operation|location`` where the location field is
  optional.  Blank lines and lines starting with ``#`` are ignored.

* **CSV** -- ``thread,etype,target,loc`` with a header row.

* **mtrace** / **tsan** -- real-trace ingest adapters for kernel-style
  lock logs and a ThreadSanitizer-like format, mapped onto the same
  event vocabulary; see :mod:`repro.trace.adapters`.

Every format resolves wire tokens through the declarative
:data:`repro.trace.semantics.TOKEN_TO_ETYPE` map, so a new event kind
registered in :mod:`repro.trace.semantics` is automatically parseable
everywhere.  Parse errors always name the line (or row) number and the
offending token.

Three layers of entry points:

* the *block decoders* (:func:`parse_std_batch`, :func:`parse_csv_batch`)
  turn a list of raw lines/rows into a list of events in one call.  They
  are the decoding hot path: attribute lookups are hoisted out of the
  loop and the wire tokens that repeat across a trace -- ``op(arg)``
  fields and thread names -- are memoized, so the regex / interning cost
  is paid once per distinct token instead of once per line;
* the *streaming* layer (:func:`iter_std_events`, :func:`iter_csv_events`,
  :func:`iter_trace_file`) yields :class:`~repro.trace.event.Event`
  objects without materialising the input -- it reads fixed-size blocks
  of lines through the block decoders (constant memory either way), and
  is what the :class:`~repro.engine.FileSource` feeds to the streaming
  engine so that arbitrarily large logs can be analysed;
* the *whole-trace* layer (:func:`parse_std`, :func:`parse_csv`,
  :func:`load_trace`) builds a validated
  :class:`~repro.trace.trace.Trace` on top of the streaming layer.

:func:`load_trace` / :func:`iter_trace_file` dispatch on the file
extension (``.csv``/``.mtrace``/``.tsan`` vs STD) unless an explicit
``format`` is given.
"""

from __future__ import annotations

import csv
import io
import re
from itertools import islice
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.trace.event import Event, EventType
from repro.trace.semantics import REGISTRY, TOKEN_TO_ETYPE, TraceError
from repro.trace.trace import Trace
from repro.vectorclock.registry import ThreadRegistry

_OP_PATTERN = re.compile(r"^\s*(\w+)\s*\(\s*([^)]*?)\s*\)\s*$")

#: The formats ``--format`` / the extension dispatch understand.
FORMAT_NAMES = ("std", "csv", "mtrace", "tsan")

#: file extension -> format name (anything else parses as STD).
_EXTENSION_FORMATS = {".csv": "csv", ".mtrace": "mtrace", ".tsan": "tsan"}


class TraceParseError(TraceError):
    """Raised when a trace file cannot be parsed.

    A :class:`~repro.trace.semantics.TraceError` subclass: malformed
    input and semantically invalid input surface through one exception
    hierarchy.  Messages are one-line and actionable -- they always name
    the line (or CSV row) number and the offending token.
    """


def _check_operand(
    etype: EventType, target: Optional[str], token: str, where: str
) -> None:
    operand = REGISTRY[etype].operand
    if operand is not None and target is None:
        raise TraceParseError(
            "%s: %r requires a %s operand, e.g. %r"
            % (where, token, operand, "%s(%s0)" % (token, operand[0]))
        )


def _parse_operation(text: str, line_number: int) -> "tuple[EventType, Optional[str]]":
    text = text.strip()
    match = _OP_PATTERN.match(text)
    if match:
        name, argument = match.group(1).lower(), match.group(2) or None
    else:
        name, argument = text.lower(), None
    etype = TOKEN_TO_ETYPE.get(name)
    if etype is None:
        raise TraceParseError(
            "line %d: unknown operation token %r in %r"
            % (line_number, name, text)
        )
    _check_operand(etype, argument, name, "line %d" % line_number)
    return etype, argument


# --------------------------------------------------------------------- #
# Streaming layer
# --------------------------------------------------------------------- #

def parse_std_line(
    raw: str,
    index: int,
    line_number: int = 1,
    registry: Optional[ThreadRegistry] = None,
) -> Optional[Event]:
    """Parse a single STD-format line into an :class:`Event`.

    Returns None for blank lines and ``#`` comments.  ``index`` becomes
    the event's stream position, ``line_number`` is quoted in parse
    errors, and ``registry`` stamps the interned thread ``tid`` exactly
    like the batch entry points.  This is the unit the incremental
    consumers build on: :func:`iter_std_events` for files, the engine's
    :class:`~repro.engine.sources.LineProtocolSource` for live
    socket/pipe streams.
    """
    line = raw.strip()
    if not line or line.startswith("#"):
        return None
    parts = [part.strip() for part in line.split("|")]
    if len(parts) < 2:
        raise TraceParseError(
            "line %d: expected 'thread|op(arg)[|loc]', got %r" % (line_number, raw)
        )
    thread = parts[0]
    etype, target = _parse_operation(parts[1], line_number)
    loc = parts[2] if len(parts) > 2 and parts[2] else None
    return Event(
        index, thread, etype, target, loc,
        tid=registry.intern(thread) if registry is not None else None,
    )


#: Lines/rows decoded per block by the streaming iterators.  Large enough
#: to amortise per-batch overhead, small enough that a block of pending
#: events stays trivially bounded (constant memory is preserved).
BATCH_LINES = 1024


def parse_std_batch(
    lines: Sequence[str],
    index: int = 0,
    line_number: int = 1,
    registry: Optional[ThreadRegistry] = None,
    op_cache: Optional[Dict[str, Tuple[EventType, Optional[str]]]] = None,
) -> Tuple[List[Event], int, int]:
    """Decode a block of STD lines into events in one call.

    The vectorized counterpart of :func:`parse_std_line`, and the grammar
    is byte-identical: blank lines and ``#`` comments are skipped (but
    counted for error messages), parse errors quote the 1-based line
    number.  What the block shape buys is amortisation -- constructor and
    method lookups are hoisted out of the loop, and two memos exploit the
    redundancy of real traces:

    * ``op_cache`` maps raw ``op(arg)`` fields to their resolved
      ``(etype, target)``; a trace touching L locks and V variables pays
      the regex only O(L + V) times instead of once per line.  Callers
      decoding a stream in consecutive blocks pass the same dict back in
      to keep the memo warm across blocks.
    * thread names are interned through a local memo, so the registry is
      consulted once per distinct thread per block, not once per line.

    Returns ``(events, next_index, next_line_number)`` so consecutive
    calls continue the numbering exactly where the previous block ended.
    """
    if op_cache is None:
        op_cache = {}
    op_cached = op_cache.get
    intern = registry.intern if registry is not None else None
    tid_cache: Dict[str, Optional[int]] = {}
    tid_cached = tid_cache.get
    event_cls = Event
    events: List[Event] = []
    append = events.append
    for raw in lines:
        line = raw.strip()
        if not line or line[0] == "#":
            line_number += 1
            continue
        parts = line.split("|")
        if len(parts) < 2:
            raise TraceParseError(
                "line %d: expected 'thread|op(arg)[|loc]', got %r"
                % (line_number, raw)
            )
        thread = parts[0].strip()
        op_field = parts[1].strip()
        resolved = op_cached(op_field)
        if resolved is None:
            resolved = op_cache[op_field] = _parse_operation(
                op_field, line_number
            )
        etype, target = resolved
        if len(parts) > 2:
            loc = parts[2].strip() or None
        else:
            loc = None
        if intern is not None:
            tid = tid_cached(thread)
            if tid is None:
                tid = tid_cache[thread] = intern(thread)
        else:
            tid = None
        append(event_cls(index, thread, etype, target, loc, tid=tid))
        index += 1
        line_number += 1
    return events, index, line_number


def iter_std_events(
    lines: Iterable[str], registry: Optional[ThreadRegistry] = None
) -> Iterator[Event]:
    """Lazily parse STD-format lines into a stream of events.

    Events are numbered in order of appearance.  Lines are pulled in
    blocks of :data:`BATCH_LINES` and decoded through
    :func:`parse_std_batch` (sharing one operation memo across blocks),
    so memory stays constant while the per-line overhead of one-at-a-time
    parsing is amortised away; this feeds the streaming engine from
    arbitrarily large log files.  When a ``registry`` is given, every
    event is stamped with its interned thread ``tid`` at parse time so
    downstream detectors sharing the registry never hash a thread
    identifier again.
    """
    iterator = iter(lines)
    index = 0
    line_number = 1
    op_cache: Dict[str, Tuple[EventType, Optional[str]]] = {}
    while True:
        block = list(islice(iterator, BATCH_LINES))
        if not block:
            return
        events, index, line_number = parse_std_batch(
            block, index, line_number, registry=registry, op_cache=op_cache
        )
        yield from events


def parse_csv_batch(
    rows: Sequence[List[str]],
    columns: Dict[str, int],
    index: int = 0,
    row_number: int = 2,
    registry: Optional[ThreadRegistry] = None,
    etype_cache: Optional[Dict[str, EventType]] = None,
) -> Tuple[List[Event], int, int]:
    """Decode a block of already-split CSV rows into events in one call.

    ``columns`` maps the (lower-cased) header field names to their
    positions, resolved once per file by :func:`iter_csv_events`; ``rows``
    come straight from :class:`csv.reader`.  Mirrors
    :func:`parse_std_batch`: the event-type tokens are memoized in
    ``etype_cache`` (pass the same dict back in across blocks) and thread
    interning goes through a per-block memo.  Empty rows (blank lines)
    are skipped without consuming a row number, matching the historical
    ``csv.DictReader`` behaviour.  Returns ``(events, next_index,
    next_row_number)``.
    """
    if etype_cache is None:
        etype_cache = {}
    etype_cached = etype_cache.get
    intern = registry.intern if registry is not None else None
    tid_cache: Dict[str, Optional[int]] = {}
    tid_cached = tid_cache.get
    thread_col = columns.get("thread")
    etype_col = columns.get("etype")
    target_col = columns.get("target")
    loc_col = columns.get("loc")
    event_cls = Event
    events: List[Event] = []
    append = events.append
    for row in rows:
        if not row:
            continue
        n_fields = len(row)
        if (
            thread_col is None or etype_col is None
            or thread_col >= n_fields or etype_col >= n_fields
        ):
            raise TraceParseError(
                "row %d: missing thread/etype column" % row_number
            )
        raw_etype = row[etype_col]
        etype = etype_cached(raw_etype)
        if etype is None:
            etype_name = raw_etype.strip().lower()
            etype = TOKEN_TO_ETYPE.get(etype_name)
            if etype is None:
                raise TraceParseError(
                    "row %d: unknown event type token %r"
                    % (row_number, raw_etype)
                )
            etype_cache[raw_etype] = etype
        target = (
            row[target_col].strip() or None
            if target_col is not None and target_col < n_fields else None
        )
        if target is None and REGISTRY[etype].operand is not None:
            _check_operand(
                etype, target, raw_etype.strip().lower(), "row %d" % row_number
            )
        loc = (
            row[loc_col].strip() or None
            if loc_col is not None and loc_col < n_fields else None
        )
        thread = row[thread_col].strip()
        if intern is not None:
            tid = tid_cached(thread)
            if tid is None:
                tid = tid_cache[thread] = intern(thread)
        else:
            tid = None
        append(event_cls(index, thread, etype, target, loc, tid=tid))
        index += 1
        row_number += 1
    return events, index, row_number


def iter_csv_events(
    lines: Iterable[str], registry: Optional[ThreadRegistry] = None
) -> Iterator[Event]:
    """Lazily parse CSV-format lines (header row required) into events.

    The header's column positions are resolved once, then the rows are
    decoded in blocks of :data:`BATCH_LINES` through
    :func:`parse_csv_batch` (one shared event-type memo), replacing the
    per-row dict building of ``csv.DictReader``.  ``registry`` stamps
    interned thread tids exactly like :func:`iter_std_events`.
    """
    reader = csv.reader(lines)
    header = next(reader, None)
    if header is None:
        return
    columns = {name.strip().lower(): pos for pos, name in enumerate(header)}
    index = 0
    row_number = 2
    etype_cache: Dict[str, EventType] = {}
    while True:
        block = list(islice(reader, BATCH_LINES))
        if not block:
            return
        events, index, row_number = parse_csv_batch(
            block, columns, index, row_number,
            registry=registry, etype_cache=etype_cache,
        )
        yield from events


def event_iterator(
    format: Optional[str],
) -> Callable[..., Iterator[Event]]:
    """Resolve a format name to its ``(lines, registry=...)`` iterator.

    ``None`` means STD.  The mtrace/tsan adapters are imported lazily so
    the core parser has no import-time dependency on the adapter layer.
    """
    if format in (None, "std"):
        return iter_std_events
    if format == "csv":
        return iter_csv_events
    from repro.trace.adapters import ADAPTERS

    try:
        return ADAPTERS[format]
    except KeyError:
        raise ValueError(
            "unknown trace format %r; available: %s"
            % (format, ", ".join(FORMAT_NAMES))
        )


def detect_format(path: Union[str, Path]) -> str:
    """Return the format implied by ``path``'s extension (STD otherwise)."""
    return _EXTENSION_FORMATS.get(Path(path).suffix.lower(), "std")


def iter_trace_file(
    path: Union[str, Path],
    registry: Optional[ThreadRegistry] = None,
    format: Optional[str] = None,
) -> Iterator[Event]:
    """Lazily stream the events of a trace file, one line at a time.

    The file is opened when iteration starts and closed when the iterator
    is exhausted; at no point is the whole file (or a ``Trace``) held in
    memory.  Dispatches on the file extension like :func:`load_trace`
    unless ``format`` names one of :data:`FORMAT_NAMES`; ``registry``
    stamps interned thread tids at parse time.
    """
    path = Path(path)
    parse_events = event_iterator(format or detect_format(path))
    with path.open("r", newline="") as handle:
        for event in parse_events(handle, registry=registry):
            yield event


# --------------------------------------------------------------------- #
# Batch layer
# --------------------------------------------------------------------- #

def _as_lines(source: Union[str, Iterable[str]]) -> Iterable[str]:
    if isinstance(source, str):
        return io.StringIO(source)
    return source


def parse_std(source: Union[str, Iterable[str]], name: Optional[str] = None,
              validate: bool = True,
              registry: Optional[ThreadRegistry] = None) -> Trace:
    """Parse the STD text format from a string or an iterable of lines."""
    registry = registry if registry is not None else ThreadRegistry()
    return Trace(iter_std_events(_as_lines(source), registry=registry),
                 validate=validate, name=name, registry=registry)


def parse_csv(source: Union[str, Iterable[str]], name: Optional[str] = None,
              validate: bool = True,
              registry: Optional[ThreadRegistry] = None) -> Trace:
    """Parse the CSV format (``thread,etype,target,loc`` with header)."""
    registry = registry if registry is not None else ThreadRegistry()
    return Trace(iter_csv_events(_as_lines(source), registry=registry),
                 validate=validate, name=name, registry=registry)


def load_trace(
    path: Union[str, Path],
    validate: bool = True,
    format: Optional[str] = None,
) -> Trace:
    """Load a trace from ``path``, dispatching on the file extension.

    The file is parsed line by line through the streaming layer, so only
    the event objects (never the raw text) are held in memory.  Pass
    ``format`` (one of :data:`FORMAT_NAMES`) to override the extension
    dispatch -- e.g. to ingest an mtrace-style log from a ``.txt`` file.
    """
    path = Path(path)
    parse_events = event_iterator(format or detect_format(path))
    registry = ThreadRegistry()
    with path.open("r", newline="") as handle:
        return Trace(
            parse_events(handle, registry=registry),
            validate=validate, name=path.stem, registry=registry,
        )
