"""Real-trace ingest adapters: mtrace-style kernel logs and a TSan-like format.

Production traces rarely arrive in the STD format; they come out of
kernel tracers and sanitizer runtimes with their own line grammars and a
richer synchronization vocabulary (reader/writer locks, condition
variables, barriers).  The adapters below map two such families onto the
event vocabulary declared in :mod:`repro.trace.semantics`, yielding
ordinary :class:`~repro.trace.event.Event` streams that every consumer
(batch ``load_trace``, streaming ``FileSource``, the CLI's
``--format {std,csv,mtrace,tsan}``) treats identically.

**mtrace** -- ftrace/lockdep-style kernel lock logs, one record per line::

    worker-1042 [001] 5012.347812: lock_acquire: &rq->lock
    reader-77   [000] 5012.348100: lock_acquire: read &sem
    reader-77   [000] 5012.348150: mem_read: counter
    reader-77   [000] 5012.348300: lock_release: &sem

``comm-pid`` is the thread identity, the bracketed CPU and the
timestamp become the program location.  ``lock_acquire`` takes an
optional ``read``/``write`` mode prefix (lockdep's reader flag); plain
acquires are exclusive mutex acquires.  ``lock_release`` is
mode-resolved by the adapter: it tracks which locks each task opened
through a reader/writer acquire and emits ``rrel`` for those, ``rel``
otherwise -- kernel logs do not distinguish on the release side.
Records: ``lock_acquire``, ``lock_release``, ``mem_read``,
``mem_write``, ``task_fork``, ``task_join``.

**tsan** -- a ThreadSanitizer-like annotation stream, one op per line::

    T0 thread_create T1
    T1 mutex_lock m 0x4a2f
    T1 write data 0x4a33
    T1 mutex_unlock m
    T2 rwlock_read_lock rw
    T2 barrier_wait b0
    T2 cond_signal cv

``thread verb target [pc]`` with verbs mapping 1:1 onto the vocabulary
(``cond_wait`` maps to ``wait``, i.e. the *wake-side* re-acquire; the
producer emits ``mutex_unlock`` at wait-start, the RVPredict desugaring
documented in :mod:`repro.trace.semantics`).

Both adapters follow the streaming-parser contract of
:func:`repro.trace.parsers.iter_std_events`: lazy, blank lines and
``#`` comments skipped, events numbered in order of appearance,
``registry`` stamping interned thread tids, and every error a one-line
:class:`~repro.trace.parsers.TraceParseError` naming the line number
and the offending token.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, Optional, Set

from repro.trace.event import Event, EventType
from repro.trace.parsers import TraceParseError
from repro.vectorclock.registry import ThreadRegistry

__all__ = ["iter_mtrace_events", "iter_tsan_events", "ADAPTERS"]


_MTRACE_PATTERN = re.compile(
    r"^\s*(?P<thread>\S+-\d+)\s+\[(?P<cpu>\d+)\]\s+(?P<ts>[0-9.]+):\s*"
    r"(?P<op>\w+):\s*(?P<args>.*?)\s*$"
)

#: mtrace record -> (etype for plain form); lock_acquire handled specially.
_MTRACE_SIMPLE = {
    "mem_read": EventType.READ,
    "mem_write": EventType.WRITE,
    "task_fork": EventType.FORK,
    "task_join": EventType.JOIN,
}


def iter_mtrace_events(
    lines: Iterable[str], registry: Optional[ThreadRegistry] = None
) -> Iterator[Event]:
    """Lazily parse mtrace-style kernel lock-log lines into events."""
    intern = registry.intern if registry is not None else None
    # Locks each task currently holds through a reader/writer acquire;
    # their releases must surface as ``rrel``, the rest as ``rel``.
    rw_open: Dict[str, Set[str]] = {}
    index = 0
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _MTRACE_PATTERN.match(line)
        if match is None:
            raise TraceParseError(
                "line %d: expected 'comm-pid [cpu] ts: op: args', got %r"
                % (line_number, raw)
            )
        thread = match.group("thread")
        op = match.group("op")
        args = match.group("args")
        loc = "%s:%s" % (match.group("cpu"), match.group("ts"))

        if op == "lock_acquire":
            mode, _, rest = args.partition(" ")
            if mode in ("read", "write") and rest.strip():
                lock = rest.strip()
                etype = EventType.RACQ_R if mode == "read" else EventType.RACQ_W
                rw_open.setdefault(thread, set()).add(lock)
            else:
                lock = args.strip()
                etype = EventType.ACQUIRE
            if not lock:
                raise TraceParseError(
                    "line %d: 'lock_acquire' requires a lock name" % line_number
                )
            target = lock
        elif op == "lock_release":
            lock = args.strip()
            if not lock:
                raise TraceParseError(
                    "line %d: 'lock_release' requires a lock name" % line_number
                )
            opened = rw_open.get(thread)
            if opened is not None and lock in opened:
                opened.discard(lock)
                etype = EventType.RREL
            else:
                etype = EventType.RELEASE
            target = lock
        elif op in _MTRACE_SIMPLE:
            etype = _MTRACE_SIMPLE[op]
            target = args.strip()
            if not target:
                raise TraceParseError(
                    "line %d: %r requires an operand" % (line_number, op)
                )
        else:
            raise TraceParseError(
                "line %d: unknown mtrace record %r" % (line_number, op)
            )

        yield Event(
            index, thread, etype, target, loc,
            tid=intern(thread) if intern is not None else None,
        )
        index += 1


#: tsan verb -> etype (all 1:1; the producer desugars waits, see module docs).
_TSAN_VERBS = {
    "read": EventType.READ,
    "write": EventType.WRITE,
    "mutex_lock": EventType.ACQUIRE,
    "mutex_unlock": EventType.RELEASE,
    "rwlock_read_lock": EventType.RACQ_R,
    "rwlock_write_lock": EventType.RACQ_W,
    "rwlock_unlock": EventType.RREL,
    "thread_create": EventType.FORK,
    "thread_join": EventType.JOIN,
    "cond_wait": EventType.WAIT,
    "cond_signal": EventType.NOTIFY,
    "barrier_wait": EventType.BARRIER,
}


def iter_tsan_events(
    lines: Iterable[str], registry: Optional[ThreadRegistry] = None
) -> Iterator[Event]:
    """Lazily parse TSan-like ``thread verb target [pc]`` lines into events."""
    intern = registry.intern if registry is not None else None
    index = 0
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 3 or len(parts) > 4:
            raise TraceParseError(
                "line %d: expected 'thread verb target [pc]', got %r"
                % (line_number, raw)
            )
        thread, verb, target = parts[0], parts[1].lower(), parts[2]
        etype = _TSAN_VERBS.get(verb)
        if etype is None:
            raise TraceParseError(
                "line %d: unknown tsan operation %r" % (line_number, parts[1])
            )
        loc = parts[3] if len(parts) == 4 else None
        yield Event(
            index, thread, etype, target, loc,
            tid=intern(thread) if intern is not None else None,
        )
        index += 1


#: format name -> streaming iterator, consumed by
#: :func:`repro.trace.parsers.event_iterator`.
ADAPTERS = {
    "mtrace": iter_mtrace_events,
    "tsan": iter_tsan_events,
}
