"""Trace writers -- the inverse of :mod:`repro.trace.parsers`."""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Union

from repro.trace.trace import Trace


def write_std(trace: Trace) -> str:
    """Serialize ``trace`` in the STD one-event-per-line format."""
    lines = []
    for event in trace:
        target = event.target if event.target is not None else ""
        loc = event.loc or ""
        lines.append("%s|%s(%s)|%s" % (event.thread, event.etype.value, target, loc))
    return "\n".join(lines) + "\n"


def write_csv(trace: Trace) -> str:
    """Serialize ``trace`` as CSV with a ``thread,etype,target,loc`` header."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["thread", "etype", "target", "loc"])
    for event in trace:
        writer.writerow([
            event.thread,
            event.etype.value,
            event.target if event.target is not None else "",
            event.loc or "",
        ])
    return buffer.getvalue()


def dump_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Write ``trace`` to ``path``, choosing the format from the extension."""
    path = Path(path)
    if path.suffix.lower() == ".csv":
        path.write_text(write_csv(trace))
    else:
        path.write_text(write_std(trace))
    return path
