"""Trace model.

This subpackage defines the execution-trace substrate that every detector
consumes:

* :class:`~repro.trace.event.Event` and
  :class:`~repro.trace.event.EventType` -- single events
  (``acquire``/``release``/``read``/``write``/``fork``/``join``/``begin``/``end``).
* :class:`~repro.trace.trace.Trace` -- an immutable sequence of events with
  well-formedness checks (lock semantics and well nestedness, Section 2.1 of
  the paper) plus derived lookups such as critical sections and projections.
* :class:`~repro.trace.builder.TraceBuilder` -- a small DSL for writing the
  paper's example traces by hand.
* :mod:`~repro.trace.semantics` -- the declarative event-semantics
  registry: every event kind's wire tokens, operand arity, validator
  role, clock action and sharding class in one table, plus the
  :class:`~repro.trace.semantics.LockDiscipline` state machine both the
  batch and streaming validators drive.
* :mod:`~repro.trace.parsers` / :mod:`~repro.trace.writers` -- the STD text
  format (one event per line, RAPID-compatible) and a CSV format.
* :mod:`~repro.trace.adapters` -- ingest adapters for real-world trace
  formats (mtrace-style kernel lock logs, a TSan-like format).
"""

from repro.trace.event import Event, EventType
from repro.trace.semantics import (
    EventSemantics,
    LockDiscipline,
    REGISTRY,
    TOKEN_TO_ETYPE,
)
from repro.trace.trace import Trace, TraceError, LockSemanticsError, WellNestednessError
from repro.trace.builder import TraceBuilder
from repro.trace.parsers import (
    FORMAT_NAMES,
    TraceParseError,
    detect_format,
    event_iterator,
    iter_trace_file,
    load_trace,
    parse_csv,
    parse_std,
)
from repro.trace.adapters import ADAPTERS, iter_mtrace_events, iter_tsan_events
from repro.trace.writers import write_std, write_csv, dump_trace

__all__ = [
    "Event",
    "EventType",
    "EventSemantics",
    "LockDiscipline",
    "REGISTRY",
    "TOKEN_TO_ETYPE",
    "Trace",
    "TraceError",
    "LockSemanticsError",
    "WellNestednessError",
    "TraceBuilder",
    "FORMAT_NAMES",
    "TraceParseError",
    "detect_format",
    "event_iterator",
    "iter_trace_file",
    "parse_std",
    "parse_csv",
    "load_trace",
    "ADAPTERS",
    "iter_mtrace_events",
    "iter_tsan_events",
    "write_std",
    "write_csv",
    "dump_trace",
]
