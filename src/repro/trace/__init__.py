"""Trace model.

This subpackage defines the execution-trace substrate that every detector
consumes:

* :class:`~repro.trace.event.Event` and
  :class:`~repro.trace.event.EventType` -- single events
  (``acquire``/``release``/``read``/``write``/``fork``/``join``/``begin``/``end``).
* :class:`~repro.trace.trace.Trace` -- an immutable sequence of events with
  well-formedness checks (lock semantics and well nestedness, Section 2.1 of
  the paper) plus derived lookups such as critical sections and projections.
* :class:`~repro.trace.builder.TraceBuilder` -- a small DSL for writing the
  paper's example traces by hand.
* :mod:`~repro.trace.parsers` / :mod:`~repro.trace.writers` -- the STD text
  format (one event per line, RAPID-compatible) and a CSV format.
"""

from repro.trace.event import Event, EventType
from repro.trace.trace import Trace, TraceError, LockSemanticsError, WellNestednessError
from repro.trace.builder import TraceBuilder
from repro.trace.parsers import parse_std, parse_csv, load_trace
from repro.trace.writers import write_std, write_csv, dump_trace

__all__ = [
    "Event",
    "EventType",
    "Trace",
    "TraceError",
    "LockSemanticsError",
    "WellNestednessError",
    "TraceBuilder",
    "parse_std",
    "parse_csv",
    "load_trace",
    "write_std",
    "write_csv",
    "dump_trace",
]
