"""Correct reorderings, race witnesses and predictable deadlocks.

The soundness notion of the paper (Section 2.1) is defined through
*correct reorderings*: a trace ``sigma'`` is a correct reordering of
``sigma`` when every thread's projection in ``sigma'`` is a prefix of its
projection in ``sigma`` and every read observes the same last write.  A
*predictable race* (deadlock) exists when some correct reordering exhibits
a race (deadlock).

* :mod:`~repro.reordering.feasibility` -- check whether a candidate trace
  is a correct reordering of an original trace.
* :mod:`~repro.reordering.witness` -- bounded search for a correct
  reordering that places two given conflicting events next to each other
  (a race witness) or that exhibits a deadlock.  This is both the
  ground-truth oracle used in the tests (validating the soundness theorem
  on small traces) and the engine behind the RVPredict-like
  :class:`repro.mcm.predictor.MCMPredictor`.
"""

from repro.reordering.feasibility import (
    ReorderingViolation,
    check_correct_reordering,
    is_correct_reordering,
)
from repro.reordering.witness import (
    WitnessSearchResult,
    find_race_witness,
    find_all_predictable_races,
    has_predictable_race,
    find_deadlock_witness,
)

__all__ = [
    "ReorderingViolation",
    "check_correct_reordering",
    "is_correct_reordering",
    "WitnessSearchResult",
    "find_race_witness",
    "find_all_predictable_races",
    "has_predictable_race",
    "find_deadlock_witness",
]
