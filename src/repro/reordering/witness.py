"""Bounded search for race and deadlock witnesses.

Given a trace and a conflicting pair of events, :func:`find_race_witness`
searches for a *correct reordering* that schedules the two events next to
each other -- the ground truth notion of a predictable race (Section 2.1).
:func:`find_deadlock_witness` searches for a correct reordering that ends
in a state where a set of threads are cyclically waiting on each other's
locks -- a predictable deadlock.

The search enumerates interleavings of per-thread prefixes.  A state is a
pair of (per-thread scheduled counts, per-variable last writer); a next
event of a thread is *enabled* when

* its lock (for an acquire) is not held by another thread,
* its original last writer (for a read) is exactly the currently scheduled
  last writer of the variable,
* its forking event (for events of a forked thread) has been scheduled, and
* the joined thread (for a join) has run to completion.

The search is exponential in the worst case and therefore carries both a
state budget and an optional wall-clock budget; ``exhausted=True`` in the
result means "not found within budget" rather than "no witness exists".
The same engine powers the RVPredict-like windowed predictor
(:class:`repro.mcm.predictor.MCMPredictor`), whose per-window "solver
timeout" is precisely this budget.
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.trace.event import Event, EventType
from repro.trace.trace import Trace


class WitnessSearchResult:
    """Outcome of a witness search."""

    def __init__(
        self,
        found: bool,
        schedule: Optional[List[Event]] = None,
        states_explored: int = 0,
        exhausted: bool = False,
    ) -> None:
        self.found = found
        self.schedule = schedule
        self.states_explored = states_explored
        self.exhausted = exhausted

    def __bool__(self) -> bool:
        return self.found

    def __repr__(self) -> str:
        return "WitnessSearchResult(found=%s, states=%d, exhausted=%s)" % (
            self.found, self.states_explored, self.exhausted
        )


class _SearchContext:
    """Precomputed per-trace data shared by the witness searches."""

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self.thread_events: Dict[str, List[Event]] = {
            thread: trace.thread_events(thread) for thread in trace.threads
        }
        self.threads: List[str] = list(self.thread_events)

        # Position of each event inside its thread.
        self.position: Dict[int, int] = {}
        for events in self.thread_events.values():
            for position, event in enumerate(events):
                self.position[event.index] = position

        # Original last writer (event index) for every read, None if absent.
        self.original_writer: Dict[int, Optional[int]] = {}
        last_write: Dict[str, Optional[int]] = {}
        for event in trace:
            if event.is_read():
                self.original_writer[event.index] = last_write.get(event.variable)
            elif event.is_write():
                last_write[event.variable] = event.index

        # Locks held by a thread after scheduling its first k events.
        self.held_after: Dict[str, List[FrozenSet[str]]] = {}
        for thread, events in self.thread_events.items():
            held: List[FrozenSet[str]] = [frozenset()]
            current: Tuple[str, ...] = ()
            for event in events:
                if event.is_acquire():
                    current = current + (event.lock,)
                elif event.is_release() and event.lock in current:
                    position = len(current) - 1 - current[::-1].index(event.lock)
                    current = current[:position] + current[position + 1:]
                held.append(frozenset(current))
            self.held_after[thread] = held

        # Fork prerequisites: thread -> index of the fork event creating it.
        self.fork_of: Dict[str, int] = {}
        first_event_of: Dict[str, int] = {}
        for event in trace:
            first_event_of.setdefault(event.thread, event.index)
            if event.etype is EventType.FORK:
                self.fork_of.setdefault(event.other_thread, event.index)
        # A fork only constrains threads whose events all come after it.
        for thread, fork_index in list(self.fork_of.items()):
            if first_event_of.get(thread, fork_index + 1) < fork_index:
                del self.fork_of[thread]

    def locks_held(self, counts: Dict[str, int]) -> Dict[str, str]:
        """Return lock -> holding thread for the scheduled prefix ``counts``."""
        holders: Dict[str, str] = {}
        for thread, count in counts.items():
            for lock in self.held_after[thread][count]:
                holders[lock] = thread
        return holders

    def is_scheduled(self, counts: Dict[str, int], event_index: Optional[int]) -> bool:
        """Return True when the event at ``event_index`` is inside the prefix."""
        if event_index is None:
            return False
        event = self.trace[event_index]
        return self.position[event_index] < counts.get(event.thread, 0)

    def enabled(
        self,
        event: Event,
        counts: Dict[str, int],
        last_writer: Dict[str, Optional[int]],
    ) -> bool:
        """Return True when ``event`` (the next event of its thread) can run."""
        thread = event.thread

        fork_index = self.fork_of.get(thread)
        if fork_index is not None and not self.is_scheduled(counts, fork_index):
            return False

        if event.is_acquire():
            holders = self.locks_held(counts)
            holder = holders.get(event.lock)
            return holder is None or holder == thread

        if event.is_read():
            return last_writer.get(event.variable) == self.original_writer[event.index]

        if event.etype is EventType.JOIN:
            child = event.other_thread
            total = len(self.thread_events.get(child, []))
            return counts.get(child, 0) >= total

        return True

    def schedule_effect(
        self, event: Event, last_writer: Dict[str, Optional[int]]
    ) -> Dict[str, Optional[int]]:
        """Return the last-writer map after scheduling ``event``."""
        if event.is_write():
            updated = dict(last_writer)
            updated[event.variable] = event.index
            return updated
        return last_writer


def _freeze_state(
    counts: Dict[str, int], last_writer: Dict[str, Optional[int]]
) -> Tuple[Tuple[Tuple[str, int], ...], Tuple[Tuple[str, Optional[int]], ...]]:
    return (
        tuple(sorted(counts.items())),
        tuple(sorted((k, v) for k, v in last_writer.items() if v is not None)),
    )


def find_race_witness(
    trace: Trace,
    first: Event,
    second: Event,
    max_states: int = 200_000,
    time_budget_s: Optional[float] = None,
) -> WitnessSearchResult:
    """Search for a correct reordering placing ``first`` and ``second`` adjacently.

    Returns a :class:`WitnessSearchResult`; when ``found`` is True,
    ``schedule`` is the reordered event prefix ending with the two racy
    events next to each other.
    """
    if not first.conflicts_with(second):
        return WitnessSearchResult(False)

    context = _SearchContext(trace)
    target_position = {
        first.thread: context.position[first.index],
        second.thread: context.position[second.index],
    }

    deadline = (time.monotonic() + time_budget_s) if time_budget_s else None
    visited: Set[Tuple] = set()
    states = [0]

    def over_budget() -> bool:
        if states[0] >= max_states:
            return True
        if deadline is not None and time.monotonic() > deadline:
            return True
        return False

    def adjacent_ok(
        counts: Dict[str, int], last_writer: Dict[str, Optional[int]]
    ) -> Optional[List[Event]]:
        """Try to append first/second (in either order) to finish the witness."""
        for leader, follower in ((first, second), (second, first)):
            if not context.enabled(leader, counts, last_writer):
                continue
            mid_counts = dict(counts)
            mid_counts[leader.thread] = mid_counts.get(leader.thread, 0) + 1
            mid_writer = context.schedule_effect(leader, last_writer)
            if context.enabled(follower, mid_counts, mid_writer):
                return [leader, follower]
        return None

    # Iterative depth-first search (windows can be deeper than Python's
    # recursion limit).
    initial_counts = {thread: 0 for thread in context.threads}
    stack: List[Tuple[Dict[str, int], Dict[str, Optional[int]], List[Event]]] = [
        (initial_counts, {}, [])
    ]
    witness: Optional[List[Event]] = None
    while stack and witness is None:
        if over_budget():
            break
        counts, last_writer, schedule = stack.pop()
        key = _freeze_state(counts, last_writer)
        if key in visited:
            continue
        visited.add(key)
        states[0] += 1

        # Goal: both racy events are the next events of their threads.
        if all(
            counts.get(thread, 0) == position
            for thread, position in target_position.items()
        ):
            tail = adjacent_ok(counts, last_writer)
            if tail is not None:
                witness = schedule + tail
                break

        successors = []
        for thread in context.threads:
            count = counts.get(thread, 0)
            events = context.thread_events[thread]
            if count >= len(events):
                continue
            event = events[count]
            # Never schedule the racy events themselves (nor past them).
            if thread in target_position and count >= target_position[thread]:
                continue
            if not context.enabled(event, counts, last_writer):
                continue
            next_counts = dict(counts)
            next_counts[thread] = count + 1
            next_writer = context.schedule_effect(event, last_writer)
            successors.append((event.index, (next_counts, next_writer, schedule + [event])))
        # Explore the thread whose next event is earliest in the original
        # trace first (the original order is itself a correct reordering, so
        # this heuristic reaches "easy" witnesses almost immediately).
        successors.sort(key=lambda entry: entry[0], reverse=True)
        stack.extend(state for _, state in successors)

    exhausted = witness is None and over_budget()
    return WitnessSearchResult(
        found=witness is not None,
        schedule=witness,
        states_explored=states[0],
        exhausted=exhausted,
    )


def has_predictable_race(
    trace: Trace,
    first: Event,
    second: Event,
    max_states: int = 200_000,
    time_budget_s: Optional[float] = None,
) -> bool:
    """Return True when a correct reordering exhibits the race (first, second)."""
    return find_race_witness(trace, first, second, max_states, time_budget_s).found


def find_all_predictable_races(
    trace: Trace,
    max_states_per_pair: int = 100_000,
    time_budget_s: Optional[float] = None,
) -> List[Tuple[Event, Event]]:
    """Return every conflicting event pair that has a predictable-race witness.

    Exhaustive over conflicting pairs; intended for small traces where it
    serves as the ground truth against which the partial-order detectors
    are evaluated.
    """
    deadline = (time.monotonic() + time_budget_s) if time_budget_s else None
    witnesses: List[Tuple[Event, Event]] = []
    for first, second in trace.conflicting_pairs():
        remaining = None
        if deadline is not None:
            remaining = max(0.0, deadline - time.monotonic())
            if remaining == 0.0:
                break
        if find_race_witness(trace, first, second, max_states_per_pair, remaining).found:
            witnesses.append((first, second))
    return witnesses


def find_deadlock_witness(
    trace: Trace,
    max_states: int = 200_000,
    time_budget_s: Optional[float] = None,
) -> WitnessSearchResult:
    """Search for a correct reordering whose final state is deadlocked.

    A state is deadlocked when a non-empty set of threads each wait to
    acquire a lock held by another thread in the set (a cycle in the
    wait-for graph).
    """
    context = _SearchContext(trace)
    deadline = (time.monotonic() + time_budget_s) if time_budget_s else None
    visited: Set[Tuple] = set()
    states = [0]

    def over_budget() -> bool:
        if states[0] >= max_states:
            return True
        if deadline is not None and time.monotonic() > deadline:
            return True
        return False

    def wait_for_cycle(counts: Dict[str, int]) -> bool:
        holders = context.locks_held(counts)
        waits: Dict[str, str] = {}
        for thread in context.threads:
            count = counts.get(thread, 0)
            events = context.thread_events[thread]
            if count >= len(events):
                continue
            event = events[count]
            if event.is_acquire():
                holder = holders.get(event.lock)
                if holder is not None and holder != thread:
                    waits[thread] = holder
        # Cycle detection over the wait-for edges.
        for start in waits:
            seen = set()
            current = start
            while current in waits and current not in seen:
                seen.add(current)
                current = waits[current]
                if current == start:
                    return True
        return False

    initial_counts = {thread: 0 for thread in context.threads}
    stack: List[Tuple[Dict[str, int], Dict[str, Optional[int]], List[Event]]] = [
        (initial_counts, {}, [])
    ]
    witness: Optional[List[Event]] = None
    while stack and witness is None:
        if over_budget():
            break
        counts, last_writer, schedule = stack.pop()
        key = _freeze_state(counts, last_writer)
        if key in visited:
            continue
        visited.add(key)
        states[0] += 1

        if wait_for_cycle(counts):
            witness = schedule
            break

        for thread in context.threads:
            count = counts.get(thread, 0)
            events = context.thread_events[thread]
            if count >= len(events):
                continue
            event = events[count]
            if not context.enabled(event, counts, last_writer):
                continue
            next_counts = dict(counts)
            next_counts[thread] = count + 1
            next_writer = context.schedule_effect(event, last_writer)
            stack.append((next_counts, next_writer, schedule + [event]))

    exhausted = witness is None and over_budget()
    return WitnessSearchResult(
        found=witness is not None,
        schedule=witness,
        states_explored=states[0],
        exhausted=exhausted,
    )
