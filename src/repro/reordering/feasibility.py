"""Checking the correct-reordering conditions.

A candidate trace ``sigma'`` is a *correct reordering* of ``sigma`` when
(Section 2.1):

1. for every thread ``t`` the projection ``sigma'|t`` is a prefix of
   ``sigma|t`` (threads execute the same operations in the same per-thread
   order, possibly stopping early);
2. the last ``w(x)`` before any ``r(x)`` is the same event in both traces
   (every read returns the value it returned originally);
3. ``sigma'`` is itself a trace, i.e. it satisfies lock semantics and well
   nestedness.

Events are matched across the two traces by their per-thread position (the
``k``-th event of thread ``t`` in the candidate must equal the ``k``-th
event of ``t`` in the original, compared by type and target).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.trace.event import Event
from repro.trace.trace import Trace


class ReorderingViolation:
    """A single reason why a candidate is not a correct reordering."""

    def __init__(self, kind: str, message: str, event: Optional[Event] = None) -> None:
        self.kind = kind
        self.message = message
        self.event = event

    def __repr__(self) -> str:
        return "ReorderingViolation(%s: %s)" % (self.kind, self.message)


def _per_thread_signature(trace: Trace) -> Dict[str, List[Tuple[str, Optional[str]]]]:
    """Return, per thread, the list of (etype, target) signatures in order."""
    signatures: Dict[str, List[Tuple[str, Optional[str]]]] = defaultdict(list)
    for event in trace:
        signatures[event.thread].append((event.etype.value, event.target))
    return signatures


def check_correct_reordering(original: Trace, candidate: Trace) -> List[ReorderingViolation]:
    """Return all violations of the correct-reordering conditions (empty if OK)."""
    violations: List[ReorderingViolation] = []

    original_signatures = _per_thread_signature(original)
    candidate_signatures = _per_thread_signature(candidate)

    # Condition 1: per-thread prefixes.
    for thread, candidate_events in candidate_signatures.items():
        original_events = original_signatures.get(thread, [])
        if len(candidate_events) > len(original_events):
            violations.append(ReorderingViolation(
                "prefix",
                "thread %s performs %d events but only %d exist in the original"
                % (thread, len(candidate_events), len(original_events)),
            ))
            continue
        for position, (candidate_sig, original_sig) in enumerate(
            zip(candidate_events, original_events)
        ):
            if candidate_sig != original_sig:
                violations.append(ReorderingViolation(
                    "prefix",
                    "thread %s event #%d is %r in the candidate but %r in the original"
                    % (thread, position, candidate_sig, original_sig),
                ))
                break

    # Condition 3: lock semantics / nestedness of the candidate itself.
    try:
        Trace([Event(-1, e.thread, e.etype, e.target, e.loc) for e in candidate],
              validate=True, name=candidate.name)
    except Exception as error:  # TraceError subclasses
        violations.append(ReorderingViolation("lock-semantics", str(error)))

    # Condition 2: every read sees the same last writer.
    # Identify writes by (thread, per-thread position) so they can be
    # compared across the two traces.
    def last_writer_map(trace: Trace) -> Dict[Tuple[str, int], Optional[Tuple[str, int]]]:
        position_of: Dict[int, Tuple[str, int]] = {}
        counters: Dict[str, int] = defaultdict(int)
        for event in trace:
            position_of[event.index] = (event.thread, counters[event.thread])
            counters[event.thread] += 1
        result: Dict[Tuple[str, int], Optional[Tuple[str, int]]] = {}
        last_write: Dict[str, Optional[int]] = {}
        for event in trace:
            if event.is_read():
                writer = last_write.get(event.variable)
                result[position_of[event.index]] = (
                    position_of[writer] if writer is not None else None
                )
            elif event.is_write():
                last_write[event.variable] = event.index
        return result

    original_readers = last_writer_map(original)
    candidate_readers = last_writer_map(candidate)
    for reader_key, candidate_writer in candidate_readers.items():
        original_writer = original_readers.get(reader_key)
        if candidate_writer != original_writer:
            violations.append(ReorderingViolation(
                "read-from",
                "read %r sees writer %r in the candidate but %r in the original"
                % (reader_key, candidate_writer, original_writer),
            ))

    return violations


def is_correct_reordering(original: Trace, candidate: Trace) -> bool:
    """Return True when ``candidate`` is a correct reordering of ``original``."""
    return not check_correct_reordering(original, candidate)
