"""Resilient streaming client for the serve tier.

The serve tier already speaks a recovery dialect -- ``error Overloaded:
...; retry after <n>s`` admission pushback, ``error Draining: ...``
shutdown refusals, and the ``# stream-id:`` / ``resume <offset>``
checkpoint handshake -- but until this module no shipped client honored
any of it.  :class:`RaceClient` closes the loop:

* **connect resilience** -- connect/handshake/write/read timeouts,
  bounded reconnect attempts with exponential backoff plus jitter, and a
  typed :class:`RetriesExhausted` when the budget is spent;
* **admission pushback** -- ``Overloaded`` replies are parsed for their
  ``retry after <n>s`` hint and honored verbatim; ``Draining`` replies
  back off and retry against the (restarted) endpoint;
* **mid-stream recovery** -- pushes carrying a ``stream_id`` ride the
  server-side checkpoint handshake: after any disconnect the client
  reconnects, reads the authoritative ``resume <offset>`` reply, skips
  the first ``offset`` event lines and replays the rest, so the final
  response is byte-identical to an undisturbed push (asserted by
  ``tests/test_client.py`` across resets, stalls, refusals and a full
  server drain/restart);
* **determinism** -- refuse/reset/stall faults from
  :mod:`repro.engine.faults` are injected at exact ordinals, so every
  recovery path above is exercised by the fault harness rather than by
  luck.

``push_trace`` is the one-call convenience wrapper; the CLI exposes the
same machinery as ``repro push``.
"""

from __future__ import annotations

import random
import re
import socket
import struct
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Union

__all__ = [
    "PushError",
    "PushOutcome",
    "RaceClient",
    "RetriesExhausted",
    "push_trace",
]

_RETRY_AFTER = re.compile(r"retry after (\d+)\s*s")


class PushError(RuntimeError):
    """The server answered with a non-retryable ``error`` reply.

    Raised immediately -- validation and parse rejections are
    deterministic, so resending the identical stream can only waste the
    server's admission slots.
    """


class RetriesExhausted(PushError):
    """The reconnect/retry budget is spent; the last failure is attached."""

    def __init__(self, message: str, last_error: Optional[BaseException]) -> None:
        super().__init__(message)
        self.last_error = last_error


class _Busy(Exception):
    """Internal: server said Overloaded; honor its retry-after hint."""

    def __init__(self, retry_after_s: Optional[float]) -> None:
        super().__init__("overloaded")
        self.retry_after_s = retry_after_s


class _Drained(Exception):
    """Internal: server is shutting down (possibly mid-stream)."""


class _LineReader:
    """Buffered line reads over a blocking socket (honors settimeout)."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buffer = b""

    def readline(self) -> bytes:
        """One ``\\n``-terminated line; b"" on EOF (partial tail returned)."""
        while b"\n" not in self._buffer:
            chunk = self._sock.recv(65536)
            if not chunk:
                tail, self._buffer = self._buffer, b""
                return tail
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line + b"\n"


class PushOutcome:
    """A completed push: verbatim response lines plus their parsed form."""

    def __init__(self, lines: List[str]) -> None:
        #: The server's response lines, newline-stripped, in wire order.
        self.lines = list(lines)
        #: Detector name -> (distinct races, raw race count).
        self.races: Dict[str, tuple] = {}
        #: Events the server processed (from the ``done`` line).
        self.events = 0
        for line in lines:
            parts = line.split()
            if len(parts) == 2 and parts[0] == "done":
                self.events = int(parts[1])
            elif len(parts) == 3 and parts[1].isdigit() and parts[2].isdigit():
                self.races[parts[0]] = (int(parts[1]), int(parts[2]))

    def has_race(self) -> bool:
        return any(distinct for distinct, _ in self.races.values())

    def __repr__(self) -> str:
        return "PushOutcome(events=%d, races=%r)" % (self.events, self.races)


def _line_provider(
    lines: Union[str, Path, Iterable[str], Callable[[], Iterable[str]]],
) -> Callable[[], Iterable[str]]:
    """Normalize push input into a fresh-iterable-per-attempt factory.

    Retries replay the stream from an offset, so every attempt needs its
    own iterator: paths are re-opened, callables re-called, and one-shot
    iterables are materialized once up front.
    """
    if callable(lines):
        return lines
    if isinstance(lines, (str, Path)):
        path = Path(lines)

        def read_file() -> Iterable[str]:
            with open(path, "r") as handle:
                for line in handle:
                    yield line

        return read_file
    materialized = list(lines)
    return lambda: materialized


def _is_event_line(line: str) -> bool:
    """Mirror of the server's accounting: blank and ``#`` lines are free."""
    stripped = line.strip()
    return bool(stripped) and not stripped.startswith("#")


class RaceClient:
    """Reconnecting, backoff-aware client for a :class:`RaceServer`.

    Parameters
    ----------
    host / port / socket_path:
        TCP endpoint, or a unix-domain socket path (takes precedence).
    stream_id:
        Stable stream identity for the server-side recovery handshake.
        With an id set (against a server running with a checkpoint
        directory) a severed connection resumes exactly from the
        server's ``resume <offset>`` reply; without one, reconnects
        replay the stream from the start into a fresh session.
    connect_timeout_s / handshake_timeout_s / write_timeout_s /
    read_timeout_s:
        Per-phase socket timeouts; a breach counts as one failed attempt
        and goes through the normal backoff/retry path.
    retries:
        Reconnect attempts allowed after the first (``0`` = fail on the
        first error).  Exhaustion raises :class:`RetriesExhausted`.
    backoff_s / backoff_max_s / jitter_s:
        Exponential backoff between attempts plus a uniform random
        jitter; an ``Overloaded`` reply's ``retry after <n>s`` hint
        overrides the exponential term.
    sleep / rng:
        Injection points (tests pass a recording sleep and a seeded
        ``random.Random``).
    fault_plan:
        Deterministic :class:`~repro.engine.faults.FaultPlan` with
        ``refuse_connect`` / ``reset_connection`` / ``stall_connection``
        faults for harness-driven chaos.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8787,
        socket_path: Optional[Union[str, Path]] = None,
        stream_id: Optional[str] = None,
        connect_timeout_s: float = 5.0,
        handshake_timeout_s: float = 10.0,
        write_timeout_s: float = 30.0,
        read_timeout_s: float = 120.0,
        retries: int = 5,
        backoff_s: float = 0.1,
        backoff_max_s: float = 5.0,
        jitter_s: float = 0.1,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
        fault_plan=None,
    ) -> None:
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.stream_id = stream_id
        self.connect_timeout_s = connect_timeout_s
        self.handshake_timeout_s = handshake_timeout_s
        self.write_timeout_s = write_timeout_s
        self.read_timeout_s = read_timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self.jitter_s = jitter_s
        self.sleep = sleep
        self.rng = rng if rng is not None else random.Random()
        self.fault_plan = fault_plan
        #: Retry/recovery counters (also surfaced by ``repro push -v``).
        self.stats: Dict[str, int] = {
            "connects": 0,
            "reconnects": 0,
            "refused_connects": 0,
            "injected_resets": 0,
            "stalled_reads": 0,
            "overloaded_retries": 0,
            "drain_retries": 0,
            "events_sent": 0,
            "events_skipped": 0,
        }

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def push(
        self,
        lines: Union[str, Path, Iterable[str], Callable[[], Iterable[str]]],
    ) -> PushOutcome:
        """Stream ``lines`` to the server, surviving flaps; returns the reply.

        ``lines`` is a trace file path, an iterable of STD lines, or a
        zero-argument callable yielding them (called once per attempt).
        """
        provider = _line_provider(lines)
        attempt = 0
        failures = 0
        last_error: Optional[BaseException] = None
        while True:
            try:
                return self._attempt(provider, attempt)
            except _Busy as busy:
                self.stats["overloaded_retries"] += 1
                last_error = PushError(
                    "server overloaded (retry after %ss)" % busy.retry_after_s
                )
                hinted = busy.retry_after_s
            except _Drained:
                self.stats["drain_retries"] += 1
                last_error = PushError("server draining")
                hinted = None
            except PushError:
                raise
            except (OSError, socket.timeout) as error:
                last_error = error
                hinted = None
            attempt += 1
            failures += 1
            if failures > self.retries:
                raise RetriesExhausted(
                    "push failed after %d attempt(s); last error: %s: %s "
                    "(server endpoint %s)"
                    % (
                        failures, type(last_error).__name__, last_error,
                        self._endpoint(),
                    ),
                    last_error,
                )
            self.stats["reconnects"] += 1
            self.sleep(self._delay(failures - 1, hinted))

    # ------------------------------------------------------------------ #
    # One attempt
    # ------------------------------------------------------------------ #

    def _attempt(self, provider, ordinal: int) -> PushOutcome:
        plan = self.fault_plan
        if plan is not None and plan.refuse_connect(ordinal):
            self.stats["refused_connects"] += 1
            raise ConnectionRefusedError(
                "injected connection refusal (attempt %d)" % ordinal
            )
        sock = self._connect()
        try:
            reader = _LineReader(sock)
            offset = 0
            if self.stream_id is not None:
                offset = self._recovery_handshake(sock, reader)
            self._send_events(sock, provider(), offset)
            try:
                sock.shutdown(socket.SHUT_WR)
            except OSError:
                pass
            return PushOutcome(self._read_responses(sock, reader))
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close never matters
                pass

    def _connect(self) -> socket.socket:
        self.stats["connects"] += 1
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.connect_timeout_s)
            try:
                sock.connect(str(self.socket_path))
            except BaseException:
                sock.close()
                raise
            return sock
        return socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout_s
        )

    def _recovery_handshake(self, sock: socket.socket, reader: _LineReader) -> int:
        """Send the stream-id directive; return the server's resume offset."""
        sock.settimeout(self.handshake_timeout_s)
        sock.sendall(("# stream-id: %s\n" % self.stream_id).encode("utf-8"))
        try:
            raw = reader.readline()
        except socket.timeout:
            raise PushError(
                "no resume reply to the stream-id handshake within %.0fs; "
                "recovery pushes need a server started with a checkpoint "
                "directory (serve --checkpoint-dir)" % self.handshake_timeout_s
            ) from None
        if not raw:
            raise ConnectionResetError("server closed during handshake")
        text = raw.decode("utf-8", "replace").strip()
        if text.startswith("resume "):
            return int(text.split()[1])
        self._dispatch_error(text)
        raise PushError("unexpected handshake reply: %r" % text)

    def _send_events(self, sock: socket.socket, lines, skip_events: int) -> None:
        sock.settimeout(self.write_timeout_s)
        plan = self.fault_plan
        index = 0  # absolute event ordinal (comments/blanks are free)
        for line in lines:
            data = line.encode("utf-8") if isinstance(line, str) else bytes(line)
            if not data.endswith(b"\n"):
                data += b"\n"
            if not _is_event_line(data.decode("utf-8", "replace")):
                if index >= skip_events:
                    sock.sendall(data)
                continue
            if index < skip_events:
                index += 1
                self.stats["events_skipped"] += 1
                continue
            if plan is not None and plan.reset_connection_at(index):
                self._inject_reset(sock, data, index)
            sock.sendall(data)
            index += 1
            self.stats["events_sent"] += 1

    def _inject_reset(self, sock: socket.socket, data: bytes, index: int) -> None:
        """Tear the connection mid-line: half the bytes, then a hard RST."""
        self.stats["injected_resets"] += 1
        try:
            sock.sendall(data[: max(1, len(data) // 2)])
            # SO_LINGER 0 turns close() into an RST, so the server sees a
            # genuine peer reset rather than a tidy EOF after a torn line.
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
        except OSError:
            pass
        raise ConnectionResetError(
            "injected connection reset at event %d" % index
        )

    def _read_responses(self, sock: socket.socket, reader: _LineReader) -> List[str]:
        sock.settimeout(self.read_timeout_s)
        plan = self.fault_plan
        ordinal = 0
        lines: List[str] = []
        while True:
            if plan is not None and plan.stall_read_at(ordinal):
                self.stats["stalled_reads"] += 1
                raise socket.timeout(
                    "injected read stall at response read %d" % ordinal
                )
            raw = reader.readline()
            ordinal += 1
            if not raw:
                raise ConnectionResetError(
                    "server closed before completing its response"
                )
            text = raw.decode("utf-8", "replace").rstrip("\n")
            stripped = text.strip()
            if stripped.startswith("resume "):
                # The server drained mid-stream after durably
                # checkpointing; reconnect and let the fresh handshake
                # name the authoritative offset.
                raise _Drained()
            if stripped.startswith("error "):
                self._dispatch_error(stripped)
            lines.append(text)
            if stripped.startswith("done "):
                return lines

    # ------------------------------------------------------------------ #
    # Retry plumbing
    # ------------------------------------------------------------------ #

    def _dispatch_error(self, text: str) -> None:
        """Route an ``error <Type>: ...`` reply; always raises."""
        if text.startswith("error Overloaded"):
            match = _RETRY_AFTER.search(text)
            raise _Busy(float(match.group(1)) if match else None)
        if text.startswith("error Draining"):
            raise _Drained()
        raise PushError("server rejected the stream: %s" % text)

    def _delay(self, failure: int, hinted: Optional[float]) -> float:
        backoff = min(self.backoff_max_s, self.backoff_s * (2 ** failure))
        if hinted is not None:
            backoff = max(hinted, 0.0)
        return backoff + self.jitter_s * self.rng.random()

    def _endpoint(self) -> str:
        if self.socket_path is not None:
            return str(self.socket_path)
        return "%s:%d" % (self.host, self.port)

    def __repr__(self) -> str:
        return "RaceClient(%s, stream_id=%r, retries=%d)" % (
            self._endpoint(), self.stream_id, self.retries,
        )


def push_trace(
    trace,
    host: str = "127.0.0.1",
    port: int = 8787,
    socket_path: Optional[Union[str, Path]] = None,
    stream_id: Optional[str] = None,
    **options,
) -> PushOutcome:
    """Push a trace (object or ``.std`` file path) with full resilience.

    Convenience wrapper: builds a :class:`RaceClient` (any extra keyword
    arguments are forwarded to it) and pushes the trace's STD lines.
    """
    from repro.trace.trace import Trace

    if isinstance(trace, Trace):
        from repro.trace.writers import write_std

        text = write_std(trace)
        lines: Union[Callable[[], Iterable[str]], str, Path] = (
            lambda: text.splitlines()
        )
    else:
        lines = trace
    client = RaceClient(
        host=host, port=port, socket_path=socket_path,
        stream_id=stream_id, **options,
    )
    return client.push(lines)
