"""Multi-detector comparison harness (the Table 1 machinery).

:func:`compare_on_trace` runs a list of detectors on one trace in a
**single pass** of the :class:`~repro.engine.RaceEngine` and returns a
:class:`BenchmarkRow` carrying, for each detector, the distinct-race
count and analysis time, plus the trace's descriptive columns and the WCP
queue statistics -- i.e. one row of the paper's Table 1.  Running k
detectors therefore costs one trace iteration, not k.

:func:`run_table` maps that over a set of named traces and renders the
whole table.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.metrics import queue_statistics, trace_summary
from repro.analysis.tables import format_table
from repro.core.detector import Detector
from repro.core.races import RaceReport
from repro.engine import RaceEngine
from repro.trace.trace import Trace


class BenchmarkRow:
    """Results of running several detectors on a single benchmark trace."""

    def __init__(self, name: str, trace: Trace) -> None:
        self.name = name
        self.summary = trace_summary(trace)
        self.reports: Dict[str, RaceReport] = {}

    def add_report(self, detector_name: str, report: RaceReport) -> None:
        """Attach a detector's report to this row."""
        self.reports[detector_name] = report

    def races(self, detector_name: str) -> int:
        """Distinct race-pair count for ``detector_name`` (0 when missing)."""
        report = self.reports.get(detector_name)
        return report.count() if report is not None else 0

    def time_s(self, detector_name: str) -> float:
        """Analysis time in seconds for ``detector_name`` (0.0 when missing)."""
        report = self.reports.get(detector_name)
        if report is None:
            return 0.0
        return float(report.stats.get("time_s", 0.0))

    def queue_fraction(self) -> float:
        """WCP queue-length fraction (Table 1, col 11); 0.0 when WCP absent."""
        for report in self.reports.values():
            if "max_queue_fraction" in report.stats:
                return queue_statistics(report)["max_queue_fraction"]
        return 0.0

    def as_dict(self) -> Dict[str, object]:
        """Flatten the row for serialization or table rendering."""
        flat: Dict[str, object] = {"benchmark": self.name}
        flat.update(self.summary)
        for detector_name in self.reports:
            flat["%s_races" % detector_name] = self.races(detector_name)
            flat["%s_time_s" % detector_name] = round(self.time_s(detector_name), 4)
        flat["queue_fraction"] = round(self.queue_fraction(), 4)
        return flat

    def __repr__(self) -> str:
        return "BenchmarkRow(%r, %s)" % (
            self.name,
            {name: self.races(name) for name in self.reports},
        )


def compare_on_trace(
    trace: Trace,
    detectors: Sequence[Detector],
    name: Optional[str] = None,
) -> BenchmarkRow:
    """Run every detector over ``trace`` (one engine pass) into a :class:`BenchmarkRow`."""
    row = BenchmarkRow(name or trace.name, trace)
    result = RaceEngine().run(trace, detectors=list(detectors))
    for detector_name, report in result.items():
        row.add_report(detector_name, report)
    return row


def run_table(
    traces: Mapping[str, Trace],
    detector_factory: Callable[[], Sequence[Detector]],
) -> Tuple[List[BenchmarkRow], str]:
    """Run a fresh set of detectors on every trace and render the table.

    ``detector_factory`` is called once per trace so that detector state
    never leaks between benchmarks.
    Returns the rows and the rendered plain-text table.
    """
    rows: List[BenchmarkRow] = []
    for name, trace in traces.items():
        rows.append(compare_on_trace(trace, list(detector_factory()), name=name))

    if not rows:
        return rows, "(no benchmarks)"

    detector_names: List[str] = []
    for row in rows:
        for detector_name in row.reports:
            if detector_name not in detector_names:
                detector_names.append(detector_name)

    headers = ["benchmark", "events", "threads", "locks"]
    for detector_name in detector_names:
        headers.append("%s races" % detector_name)
    for detector_name in detector_names:
        headers.append("%s time(s)" % detector_name)
    headers.append("queue %")

    table_rows: List[List[object]] = []
    for row in rows:
        cells: List[object] = [
            row.name,
            row.summary["events"],
            row.summary["threads"],
            row.summary["locks"],
        ]
        for detector_name in detector_names:
            cells.append(row.races(detector_name))
        for detector_name in detector_names:
            cells.append("%.3f" % row.time_s(detector_name))
        cells.append("%.2f" % (100.0 * row.queue_fraction()))
        table_rows.append(cells)

    return rows, format_table(headers, table_rows)
