"""Plain-text table rendering.

The benchmark harness, CLI and examples all print results as aligned text
tables (the library has no plotting dependencies); this module provides the
single formatting helper they share.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    rendered_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    columns = len(headers)
    for row in rendered_rows:
        while len(row) < columns:
            row.append("")

    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index in range(columns):
            widths[index] = max(widths[index], len(row[index]))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = [render_line([str(h) for h in headers])]
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(render_line(row))
    return "\n".join(lines)
