"""Metrics over traces and race reports.

These implement the quantities the paper reports outside the raw race
counts:

* *race distance* (Section 4.3): the minimum/maximum separation, in events,
  between witnesses of a race pair -- the paper observes HB/WCP races with
  distances of millions of events, which windowed tools cannot see;
* *queue statistics* (Table 1, column 11): the maximum total length of the
  WCP detector's FIFO queues as a fraction of the trace length;
* general trace summaries (Table 1, columns 3-5).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.races import RaceReport
from repro.trace.trace import Trace


def race_distances(report: RaceReport) -> Dict[frozenset, int]:
    """Return the maximum observed distance per distinct race pair."""
    return {pair.key(): report.distance_of(pair) for pair in report.pairs()}


def max_race_distance(report: RaceReport) -> int:
    """Return the maximum race distance over the whole report (0 if none)."""
    return report.max_distance()


def min_race_distance(report: RaceReport) -> Optional[int]:
    """Return the minimum race distance over the report (None if race-free)."""
    distances = [pair.distance for pair in report.pairs()]
    return min(distances) if distances else None


def long_distance_races(report: RaceReport, threshold: int) -> List[frozenset]:
    """Return the race pairs whose witnesses are at least ``threshold`` apart.

    These are precisely the races a windowed analysis with window size
    below ``threshold`` cannot possibly report.
    """
    return [
        pair.key()
        for pair in report.pairs()
        if report.distance_of(pair) >= threshold
    ]


def queue_statistics(report: RaceReport) -> Dict[str, float]:
    """Extract the WCP queue statistics from a report (zeros when absent)."""
    return {
        "max_queue_total": report.stats.get("max_queue_total", 0.0),
        "max_queue_fraction": report.stats.get("max_queue_fraction", 0.0),
    }


def trace_summary(trace: Trace) -> Dict[str, int]:
    """Return the Table 1 descriptive columns for a trace."""
    stats = trace.stats()
    return {
        "events": stats["events"],
        "threads": stats["threads"],
        "locks": stats["locks"],
        "variables": stats["variables"],
    }


def event_census(trace: Trace) -> Dict[str, int]:
    """Per-event-type census (canonical wire token -> count).

    Only event kinds that actually occur in the trace appear; the CLI's
    ``stats`` subcommand prints this as its census column.
    """
    return trace.census()
