"""Analysis tooling: windowing, metrics, multi-detector comparison, tables.

* :class:`~repro.analysis.windowing.WindowedDetector` -- wrap *any* detector
  so that it only ever sees bounded windows of the trace.  Used for the
  ablation showing how much race-detection capability windowing costs
  (Section 4.3 of the paper).
* :mod:`~repro.analysis.metrics` -- race distances, queue statistics and
  trace summaries.
* :mod:`~repro.analysis.compare` -- run a set of detectors over a set of
  benchmarks and produce Table-1-style rows.
* :mod:`~repro.analysis.tables` -- plain-text table rendering used by the
  CLI, the examples and the benchmark harness.
"""

from repro.analysis.windowing import WindowedDetector, HeldLockTracker, make_window_trace
from repro.analysis.metrics import (
    race_distances,
    max_race_distance,
    min_race_distance,
    long_distance_races,
    queue_statistics,
    trace_summary,
    event_census,
)
from repro.analysis.compare import BenchmarkRow, compare_on_trace, run_table
from repro.analysis.tables import format_table
from repro.analysis.export import (
    report_to_dict,
    report_to_json,
    report_to_csv,
    rows_to_json,
    rows_to_csv,
    save_report,
)
from repro.analysis.audit import AuditResult, Verdict, audit_report

__all__ = [
    "WindowedDetector",
    "HeldLockTracker",
    "make_window_trace",
    "race_distances",
    "max_race_distance",
    "min_race_distance",
    "long_distance_races",
    "queue_statistics",
    "trace_summary",
    "event_census",
    "BenchmarkRow",
    "compare_on_trace",
    "run_table",
    "format_table",
    "report_to_dict",
    "report_to_json",
    "report_to_csv",
    "rows_to_json",
    "rows_to_csv",
    "save_report",
    "AuditResult",
    "Verdict",
    "audit_report",
]
