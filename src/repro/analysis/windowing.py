"""Windowed analysis of arbitrary detectors.

The paper's central experimental argument (Section 4.3) is that windowing
-- which every non-linear sound technique is forced into -- loses races
whose two accesses are far apart.  :class:`WindowedDetector` makes that
argument reproducible for *any* detector in this library: it feeds the
wrapped detector one bounded window at a time, resetting its state between
windows, and merges the per-window reports.

Wrapping the (linear, windowing-free) WCP or HB detectors this way is the
ablation measured in ``benchmarks/bench_ablation_windowing.py``: the same
algorithm finds strictly fewer races once it is denied the whole trace.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from repro.core.detector import Detector
from repro.trace.event import Event, EventType
from repro.trace.trace import Trace


class HeldLockTracker:
    """Tracks which locks each thread holds as a trace is streamed.

    Every windowed analysis needs this: when a window boundary cuts a
    critical section in half, the fragment alone would make the protected
    accesses look unprotected and produce *spurious* races -- which no
    sound tool reports.  The tracker lets a windowed detector prepend
    synthetic acquire events for the locks held at the window's start, so
    each fragment still respects the lock context it executes under.
    """

    def __init__(self) -> None:
        self._held: Dict[str, List[str]] = defaultdict(list)

    def observe(self, event: Event) -> None:
        """Update the lock context with one trace event."""
        if event.etype is EventType.ACQUIRE:
            self._held[event.thread].append(event.lock)
        elif event.etype is EventType.RELEASE:
            held = self._held[event.thread]
            if event.lock in held:
                # Remove the innermost occurrence (well-nested traces only
                # ever have one).
                for position in range(len(held) - 1, -1, -1):
                    if held[position] == event.lock:
                        del held[position]
                        break

    def carried_prefix(self) -> List[Event]:
        """Return synthetic acquires recreating the current lock context."""
        prefix: List[Event] = []
        for thread in sorted(self._held):
            for lock in self._held[thread]:
                prefix.append(Event(
                    len(prefix), thread, EventType.ACQUIRE, lock,
                    "carried:%s:%s" % (thread, lock),
                ))
        return prefix


def make_window_trace(
    buffered: List[Event],
    carried_prefix: List[Event],
    name: str,
    registry=None,
) -> Trace:
    """Build the trace fragment for one window, with its carried lock context.

    ``registry`` (a :class:`~repro.vectorclock.registry.ThreadRegistry`)
    may be shared across the windows of one analysis so thread interning
    is done once per thread instead of once per (thread, window).
    """
    events = list(carried_prefix)
    events.extend(buffered)
    return Trace(events, validate=False, name=name, registry=registry)


class WindowedDetector(Detector):
    """Run an inner detector on consecutive, non-overlapping windows."""

    #: A window buffer is a slice of raw trace, not the bounded
    #: incrementally-maintained state the snapshot protocol is for; a
    #: "snapshot" would either drop the buffered window or have to embed
    #: it wholesale.  The engine refuses --checkpoint for windowed runs.
    supports_snapshot = False

    def __init__(self, inner: Detector, window_size: int) -> None:
        super().__init__()
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        self.inner = inner
        self.window_size = window_size
        self.name = "%s[w=%d]" % (inner.name, window_size)

    def reset(self, trace: Trace) -> None:
        self._trace = trace
        self._new_report(trace)
        self._buffer: List[Event] = []
        self._windows = 0
        self._lock_context = HeldLockTracker()
        # One interning table for every window of this run.
        self._registry = getattr(trace, "registry", None)

    def process(self, event: Event) -> None:
        self._buffer.append(event)
        if len(self._buffer) >= self.window_size:
            self._flush()

    def _flush(self) -> None:
        if not self._buffer:
            return
        carried = self._lock_context.carried_prefix()
        for event in self._buffer:
            self._lock_context.observe(event)
        window = make_window_trace(
            self._buffer, carried,
            "%s#w%d" % (self._trace.name, self._windows),
            registry=self._registry,
        )
        self._buffer = []
        self._windows += 1
        window_report = self.inner.run(window)
        self.report.merge(window_report)

    def finish(self) -> None:
        self._flush()
        self.report.stats["windows"] = float(self._windows)
        self.report.stats["window_size"] = float(self.window_size)
