"""Exporting reports and comparison rows to machine-readable formats.

Downstream users (CI gates, dashboards, scripts that diff two detector
versions) want race reports as data rather than rendered text.  This module
serialises :class:`~repro.core.races.RaceReport` and
:class:`~repro.analysis.compare.BenchmarkRow` objects to JSON and CSV.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.analysis.compare import BenchmarkRow
from repro.core.races import RacePair, RaceReport


def race_pair_to_dict(report: RaceReport, pair: RacePair) -> dict:
    """Return one race pair as a JSON-friendly dict."""
    return {
        "locations": sorted(pair.locations),
        "variable": pair.variable,
        "first_event_index": pair.first_event.index,
        "second_event_index": pair.second_event.index,
        "first_thread": pair.first_event.thread,
        "second_thread": pair.second_event.thread,
        "distance": pair.distance,
        "max_distance": report.distance_of(pair),
    }


def report_to_dict(report: RaceReport) -> dict:
    """Return the whole report as a JSON-friendly dict."""
    return {
        "detector": report.detector_name,
        "trace": report.trace_name,
        "distinct_races": report.count(),
        "raw_race_count": report.raw_race_count,
        "max_distance": report.max_distance(),
        "stats": dict(report.stats),
        "races": [race_pair_to_dict(report, pair) for pair in report.pairs()],
    }


def report_to_json(report: RaceReport, indent: int = 2) -> str:
    """Serialise a report to a JSON string."""
    return json.dumps(report_to_dict(report), indent=indent, sort_keys=True)


def report_to_csv(report: RaceReport) -> str:
    """Serialise the race pairs of a report to CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([
        "detector", "trace", "variable", "location_a", "location_b",
        "first_thread", "second_thread", "distance", "max_distance",
    ])
    for pair in report.pairs():
        locations = sorted(pair.locations)
        location_a = locations[0]
        location_b = locations[-1]
        writer.writerow([
            report.detector_name, report.trace_name, pair.variable,
            location_a, location_b,
            pair.first_event.thread, pair.second_event.thread,
            pair.distance, report.distance_of(pair),
        ])
    return buffer.getvalue()


def rows_to_json(rows: Iterable[BenchmarkRow], indent: int = 2) -> str:
    """Serialise comparison rows (Table-1 style) to JSON."""
    return json.dumps([row.as_dict() for row in rows], indent=indent, sort_keys=True)


def rows_to_csv(rows: Iterable[BenchmarkRow]) -> str:
    """Serialise comparison rows to CSV (columns unioned across rows)."""
    dictionaries = [row.as_dict() for row in rows]
    if not dictionaries:
        return ""
    columns: List[str] = []
    for entry in dictionaries:
        for key in entry:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, restval="")
    writer.writeheader()
    for entry in dictionaries:
        writer.writerow(entry)
    return buffer.getvalue()


def save_report(report: RaceReport, path: Union[str, Path]) -> Path:
    """Write a report to ``path`` (.json or .csv, chosen by extension)."""
    path = Path(path)
    if path.suffix.lower() == ".json":
        path.write_text(report_to_json(report))
    elif path.suffix.lower() == ".csv":
        path.write_text(report_to_csv(report))
    else:
        raise ValueError("unsupported report format %r (use .json or .csv)" % path.suffix)
    return path
