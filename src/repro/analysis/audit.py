"""Auditing race reports against the ground truth.

A partial-order detector only guarantees (weak) soundness for its *first*
race; practitioners nevertheless triage every reported pair.  This module
classifies each distinct race pair of a report using the reordering engine:

``confirmed-race``
    a correct reordering places the two accesses next to each other;
``deadlock-only``
    no such reordering exists, but the trace has a predictable deadlock
    (the situation of the paper's Figure 5 -- the warning is still real);
``unconfirmed``
    neither witness was found within budget (either the pair is a false
    positive beyond the first race, or the search budget was too small).

The audit is exponential in the worst case (it calls the witness search per
pair) and is meant for small traces and triage, not for the streaming path.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from repro.core.races import RacePair, RaceReport
from repro.reordering.witness import find_deadlock_witness, find_race_witness
from repro.trace.trace import Trace


class Verdict(enum.Enum):
    """Outcome of auditing one reported race pair."""

    CONFIRMED_RACE = "confirmed-race"
    DEADLOCK_ONLY = "deadlock-only"
    UNCONFIRMED = "unconfirmed"


class AuditResult:
    """Classification of every pair in a report."""

    def __init__(self, report: RaceReport) -> None:
        self.report = report
        self.verdicts: Dict[frozenset, Verdict] = {}
        self.budget_exhausted: Dict[frozenset, bool] = {}

    def record(self, pair: RacePair, verdict: Verdict, exhausted: bool) -> None:
        self.verdicts[pair.key()] = verdict
        self.budget_exhausted[pair.key()] = exhausted

    def count(self, verdict: Verdict) -> int:
        """Return how many pairs received ``verdict``."""
        return sum(1 for value in self.verdicts.values() if value is verdict)

    def confirmed(self) -> List[frozenset]:
        """Return the location pairs confirmed as real races."""
        return [
            key for key, value in self.verdicts.items()
            if value is Verdict.CONFIRMED_RACE
        ]

    def summary(self) -> str:
        """Return a one-paragraph human-readable summary."""
        return (
            "%d reported pair(s): %d confirmed race(s), %d deadlock-only, "
            "%d unconfirmed"
            % (
                len(self.verdicts),
                self.count(Verdict.CONFIRMED_RACE),
                self.count(Verdict.DEADLOCK_ONLY),
                self.count(Verdict.UNCONFIRMED),
            )
        )

    def __repr__(self) -> str:
        return "AuditResult(%s)" % self.summary()


def audit_report(
    trace: Trace,
    report: RaceReport,
    max_states_per_pair: int = 100_000,
    time_budget_s: Optional[float] = None,
) -> AuditResult:
    """Classify every distinct race pair of ``report`` against ``trace``."""
    result = AuditResult(report)
    deadlock: Optional[bool] = None  # computed lazily, shared by all pairs

    for pair in report.pairs():
        witness = find_race_witness(
            trace,
            pair.first_event,
            pair.second_event,
            max_states=max_states_per_pair,
            time_budget_s=time_budget_s,
        )
        if witness.found:
            result.record(pair, Verdict.CONFIRMED_RACE, exhausted=False)
            continue
        if deadlock is None:
            deadlock = find_deadlock_witness(
                trace, max_states=max_states_per_pair, time_budget_s=time_budget_s
            ).found
        if deadlock:
            result.record(pair, Verdict.DEADLOCK_ONLY, exhausted=witness.exhausted)
        else:
            result.record(pair, Verdict.UNCONFIRMED, exhausted=witness.exhausted)
    return result
