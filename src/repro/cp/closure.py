"""Explicit computation of the Causally-Precedes relation (Definition 2).

CP is defined by three rules over a trace:

(a) a release ``r`` and a later acquire ``a`` of the same lock are ordered
    ``r <_CP a`` when their critical sections contain *conflicting* events;
(b) they are ordered when their critical sections contain CP-ordered
    events;
(c) ``<_CP`` is closed under composition with ``<=_HB`` on either side.

Unlike WCP, both rules order the release before the *acquire*, i.e. the
critical sections in their entirety -- this is exactly the strength that
makes CP miss the race in the paper's Figure 2b.

The computation below is a straightforward fixpoint over explicit
predecessor sets (quadratic-to-cubic in the trace length); it is meant for
small traces and windows, which matches how CP is used in practice.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple

from repro.core.closure import (
    HBClosure,
    _critical_section_indices,
    compute_must_happen_before,
)
from repro.core.races import RaceReport
from repro.trace.event import Event
from repro.trace.trace import Trace


class CPClosure:
    """Fixpoint computation of ``<_CP`` and the induced races."""

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self.hb = HBClosure(trace)
        self._mhb = compute_must_happen_before(trace)
        self._cp_predecessors: List[Set[int]] = [set() for _ in range(len(trace))]
        self._compute()

    # ------------------------------------------------------------------ #
    # Fixpoint computation
    # ------------------------------------------------------------------ #

    def _compute(self) -> None:
        trace = self.trace
        n = len(trace)
        sections = _critical_section_indices(trace)
        cp = self._cp_predecessors

        releases_by_lock: Dict[str, List[int]] = defaultdict(list)
        acquires_by_lock: Dict[str, List[int]] = defaultdict(list)
        for event in trace:
            if event.is_release():
                releases_by_lock[event.lock].append(event.index)
            elif event.is_acquire():
                acquires_by_lock[event.lock].append(event.index)

        # Candidate (release, later acquire) pairs on the same lock.
        candidates: List[Tuple[int, int]] = []
        for lock, release_indices in releases_by_lock.items():
            for release_index in release_indices:
                for acquire_index in acquires_by_lock.get(lock, ()):
                    if release_index < acquire_index:
                        candidates.append((release_index, acquire_index))

        # Rule (a): critical sections containing conflicting events.
        for release_index, acquire_index in candidates:
            release_section = sections.get(release_index, [])
            acquire_section = sections.get(acquire_index, [])
            if any(
                trace[i].conflicts_with(trace[j])
                for i in release_section
                for j in acquire_section
            ):
                cp[acquire_index].add(release_index)

        changed = True
        while changed:
            changed = False

            # Rule (b): critical sections containing CP-ordered events.
            for release_index, acquire_index in candidates:
                if release_index in cp[acquire_index]:
                    continue
                release_section = sections.get(release_index, [])
                acquire_section = sections.get(acquire_index, [])
                if any(
                    e1 in cp[e2]
                    for e2 in acquire_section
                    for e1 in release_section
                ):
                    cp[acquire_index].add(release_index)
                    changed = True

            # Rule (c): closure under HB composition on either side.
            for j in range(n):
                additions: Set[int] = set()
                for k in cp[j]:
                    additions.update(self.hb.predecessors(k))
                for k in self.hb.predecessors(j):
                    additions.update(cp[k])
                before = len(cp[j])
                cp[j].update(additions)
                if len(cp[j]) != before:
                    changed = True

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def prec(self, first: int, second: int) -> bool:
        """Return True when ``e_first <_CP e_second``."""
        return first in self._cp_predecessors[second]

    def ordered(self, first: int, second: int) -> bool:
        """Return True when ``e_first <=_CP e_second``.

        ``<=_CP`` includes thread order; fork/join edges are treated the
        same way since no reordering can invert them.
        """
        if first == second:
            return True
        if first > second:
            return False
        if self.trace[first].thread == self.trace[second].thread:
            return True
        if first in self._mhb[second]:
            return True
        return self.prec(first, second)

    def races(self) -> List[Tuple[Event, Event]]:
        """Return all conflicting, CP-unordered event pairs."""
        racy = []
        for first, second in self.trace.conflicting_pairs():
            if not self.ordered(first.index, second.index):
                racy.append((first, second))
        return racy

    def report(self) -> RaceReport:
        """Return the CP races as a :class:`RaceReport`."""
        report = RaceReport("CP-closure", self.trace.name)
        for first, second in self.races():
            report.add(first, second)
        return report
