"""Causally-Precedes (CP) -- the partial order WCP weakens.

CP (Smaragdakis et al., POPL 2012; Definition 2 in the WCP paper) is a
subset of HB that detects more races than HB while remaining weakly sound.
Its drawback, and the motivation for WCP, is that no linear-time algorithm
is known, so real implementations must window the trace.

* :class:`~repro.cp.closure.CPClosure` -- explicit fixpoint computation of
  CP on a (small) trace.
* :class:`~repro.cp.detector.CPDetector` -- a windowed detector built on
  the closure, mirroring how CP is deployed in practice.
"""

from repro.cp.closure import CPClosure
from repro.cp.detector import CPDetector

__all__ = ["CPClosure", "CPDetector"]
