"""Windowed CP detector.

There is no known linear-time algorithm for CP (the WCP paper conjectures a
quadratic lower bound), so practical CP implementations partition the trace
into bounded windows and analyse each window independently -- losing every
race whose two accesses fall in different windows.  This detector mirrors
that deployment: it buffers ``window_size`` events, runs the explicit
:class:`~repro.cp.closure.CPClosure` on the fragment, and merges the
reports.

Setting ``window_size=None`` analyses the whole trace in one window; only
do this for small traces (the closure is super-quadratic).
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.windowing import HeldLockTracker, make_window_trace
from repro.core.detector import Detector
from repro.cp.closure import CPClosure
from repro.trace.event import Event
from repro.trace.trace import Trace


class CPDetector(Detector):
    """Causally-Precedes race detection over bounded windows.

    Parameters
    ----------
    window_size:
        Number of events per analysis window.  ``None`` disables windowing
        (whole-trace closure; small traces only).
    """

    name = "CP"

    #: CP has no known linear-time algorithm; the detector buffers whole
    #: windows of raw events, which is exactly the unbounded state the
    #: snapshot protocol excludes.  The engine refuses --checkpoint for it
    #: with a one-line capability error.
    supports_snapshot = False

    def __init__(self, window_size: Optional[int] = 500) -> None:
        super().__init__()
        if window_size is not None and window_size <= 0:
            raise ValueError("window_size must be positive or None")
        self.window_size = window_size

    def reset(self, trace: Trace) -> None:
        self._trace = trace
        self._new_report(trace)
        self._buffer: List[Event] = []
        self._windows_analyzed = 0
        self._lock_context = HeldLockTracker()
        # Share one thread-interning table across every window of this run
        # (adopting the source trace's when available) so window traces do
        # not re-intern per window.
        self._registry = getattr(trace, "registry", None)

    def process(self, event: Event) -> None:
        self._buffer.append(event)
        if self.window_size is not None and len(self._buffer) >= self.window_size:
            self._flush()

    def _flush(self) -> None:
        if not self._buffer:
            return
        carried = self._lock_context.carried_prefix()
        for event in self._buffer:
            self._lock_context.observe(event)
        window_trace = make_window_trace(
            self._buffer, carried,
            "%s#w%d" % (self._trace.name, self._windows_analyzed),
            registry=self._registry,
        )
        closure = CPClosure(window_trace)
        for first, second in closure.races():
            self.report.add(first, second)
        self._windows_analyzed += 1
        self._buffer = []

    def finish(self) -> None:
        self._flush()
        self.report.stats["windows"] = float(self._windows_analyzed)
        if self.window_size is not None:
            self.report.stats["window_size"] = float(self.window_size)
