"""Concurrent-program simulator (the execution substrate).

The paper obtains traces by running instrumented Java programs under the
RVPredict logger.  Neither the JVM benchmarks nor the logger are available
here, so this subpackage provides the substitute substrate: a tiny
shared-memory concurrent language with locks, an interpreter, and pluggable
schedulers.  Running a program under a scheduler yields a
:class:`~repro.trace.trace.Trace` that the detectors consume exactly as
they would consume a logged trace.

* :mod:`~repro.simulator.program` -- statements, thread programs, whole
  programs, and a few convenience constructors.
* :mod:`~repro.simulator.scheduler` -- round-robin, seeded-random and
  scripted schedulers, plus exhaustive schedule enumeration for tiny
  programs.
* :mod:`~repro.simulator.interpreter` -- executes a program under a
  scheduler and emits the trace (detecting actual deadlocks on the way).
"""

from repro.simulator.program import (
    Acquire,
    Release,
    Read,
    Write,
    Compute,
    Fork,
    Join,
    Statement,
    ThreadProgram,
    Program,
)
from repro.simulator.scheduler import (
    Scheduler,
    RoundRobinScheduler,
    RandomScheduler,
    ScriptedScheduler,
    enumerate_schedules,
)
from repro.simulator.interpreter import Interpreter, DeadlockDetected, run_program

__all__ = [
    "Acquire", "Release", "Read", "Write", "Compute", "Fork", "Join",
    "Statement", "ThreadProgram", "Program",
    "Scheduler", "RoundRobinScheduler", "RandomScheduler", "ScriptedScheduler",
    "enumerate_schedules",
    "Interpreter", "DeadlockDetected", "run_program",
]
