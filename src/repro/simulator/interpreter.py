"""The interpreter: runs a :class:`~repro.simulator.program.Program` under a
:class:`~repro.simulator.scheduler.Scheduler` and emits a trace.

The interpreter enforces real execution semantics:

* an ``Acquire`` of a lock held by another thread blocks the acquiring
  thread (it is not enabled until the lock is free);
* a ``Join`` blocks until the joined thread has executed its last
  statement;
* threads that are forked only become runnable after the ``Fork`` executes;
* when no thread is enabled but some have not finished, the run has
  deadlocked -- the interpreter raises :class:`DeadlockDetected` (or, when
  ``allow_deadlock=True``, returns the partial trace).

``Compute`` statements consume scheduler steps without emitting events,
which lets workload generators control how much interleaving the scheduler
can introduce between synchronisation points.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from repro.simulator.program import (
    Acquire, Compute, Fork, Join, Program, Read, Release, Statement, Write,
)
from repro.simulator.scheduler import Scheduler, RoundRobinScheduler
from repro.trace.event import Event, EventType
from repro.trace.trace import Trace


class DeadlockDetected(RuntimeError):
    """Raised when the program cannot make progress under the given schedule."""

    def __init__(self, waiting: Dict[str, str], partial_events: List[Event]) -> None:
        self.waiting = waiting
        self.partial_events = partial_events
        super().__init__(
            "deadlock: %s"
            % ", ".join("%s waits on %s" % item for item in sorted(waiting.items()))
        )


class Interpreter:
    """Executes a program under a scheduler, producing a :class:`Trace`."""

    def __init__(self, program: Program, scheduler: Optional[Scheduler] = None) -> None:
        self.program = program
        self.scheduler = scheduler or RoundRobinScheduler()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self, allow_deadlock: bool = False, emit_fork_join: bool = True,
            max_steps: Optional[int] = None, validate: bool = True) -> Trace:
        """Run to completion (or deadlock) and return the emitted trace.

        Batch wrapper over :meth:`iter_events`: collects the generated
        events into a validated :class:`Trace`.  On deadlock the raised
        :class:`DeadlockDetected` carries the events emitted so far.
        """
        events: List[Event] = []
        try:
            events.extend(self.iter_events(
                allow_deadlock=allow_deadlock,
                emit_fork_join=emit_fork_join,
                max_steps=max_steps,
            ))
        except DeadlockDetected as deadlock:
            raise DeadlockDetected(deadlock.waiting, events) from None
        return Trace(events, validate=validate, name=self.program.name)

    def iter_events(self, allow_deadlock: bool = False,
                    emit_fork_join: bool = True,
                    max_steps: Optional[int] = None) -> Iterator[Event]:
        """Execute the program, yielding each event as it is emitted.

        The incremental core of the interpreter: memory stays constant in
        the trace length, so a :class:`~repro.engine.sources.SimulatorSource`
        can feed the streaming engine from an unboundedly long run.  No
        trace-level validation happens (there is no trace); the execution
        semantics themselves guarantee lock consistency.  On deadlock
        (with ``allow_deadlock`` False) :class:`DeadlockDetected` is
        raised after the last executable event was yielded, with an empty
        ``partial_events`` list -- the batch :meth:`run` re-raises it with
        the accumulated events.
        """
        self.scheduler.reset()

        program_counter: Dict[str, int] = {
            thread: 0 for thread in self.program.threads
        }
        compute_remaining: Dict[str, int] = {thread: 0 for thread in self.program.threads}
        started: Set[str] = set(self.program.initial_threads)
        lock_holder: Dict[str, str] = {}
        emitted = 0
        step = 0

        def finished(thread: str) -> bool:
            return program_counter[thread] >= len(self.program.threads[thread])

        def next_statement(thread: str) -> Statement:
            return self.program.threads[thread].statements[program_counter[thread]]

        def is_enabled(thread: str) -> bool:
            if thread not in started or finished(thread):
                return False
            statement = next_statement(thread)
            if isinstance(statement, Acquire):
                holder = lock_holder.get(statement.lock)
                return holder is None or holder == thread
            if isinstance(statement, Join):
                return finished(statement.thread)
            return True

        def blocked_reason(thread: str) -> Optional[str]:
            if thread not in started or finished(thread):
                return None
            statement = next_statement(thread)
            if isinstance(statement, Acquire):
                holder = lock_holder.get(statement.lock)
                if holder is not None and holder != thread:
                    return "lock %s held by %s" % (statement.lock, holder)
            if isinstance(statement, Join) and not finished(statement.thread):
                return "join on unfinished thread %s" % statement.thread
            return None

        while True:
            if max_steps is not None and step >= max_steps:
                break
            enabled = [
                thread for thread in self.program.threads if is_enabled(thread)
            ]
            if not enabled:
                unfinished = {
                    thread: reason
                    for thread in self.program.threads
                    if (reason := blocked_reason(thread)) is not None
                }
                if unfinished and not allow_deadlock:
                    raise DeadlockDetected(unfinished, [])
                break

            thread = self.scheduler.pick(enabled, step)
            step += 1

            if compute_remaining[thread] > 0:
                compute_remaining[thread] -= 1
                if compute_remaining[thread] == 0:
                    program_counter[thread] += 1
                continue

            statement = next_statement(thread)
            if isinstance(statement, Compute):
                if statement.steps == 1:
                    program_counter[thread] += 1
                else:
                    compute_remaining[thread] = statement.steps - 1
                continue

            if isinstance(statement, Acquire):
                lock_holder[statement.lock] = thread
                yield Event(
                    emitted, thread, EventType.ACQUIRE, statement.lock, statement.loc
                )
                emitted += 1
            elif isinstance(statement, Release):
                if lock_holder.get(statement.lock) != thread:
                    raise RuntimeError(
                        "thread %s releases lock %s it does not hold"
                        % (thread, statement.lock)
                    )
                del lock_holder[statement.lock]
                yield Event(
                    emitted, thread, EventType.RELEASE, statement.lock, statement.loc
                )
                emitted += 1
            elif isinstance(statement, Read):
                yield Event(
                    emitted, thread, EventType.READ, statement.var, statement.loc
                )
                emitted += 1
            elif isinstance(statement, Write):
                yield Event(
                    emitted, thread, EventType.WRITE, statement.var, statement.loc
                )
                emitted += 1
            elif isinstance(statement, Fork):
                started.add(statement.thread)
                if emit_fork_join:
                    yield Event(
                        emitted, thread, EventType.FORK, statement.thread,
                        statement.loc
                    )
                    emitted += 1
            elif isinstance(statement, Join):
                if emit_fork_join:
                    yield Event(
                        emitted, thread, EventType.JOIN, statement.thread,
                        statement.loc
                    )
                    emitted += 1
            else:  # pragma: no cover - defensive
                raise TypeError("unknown statement %r" % (statement,))

            program_counter[thread] += 1


def run_program(
    program: Program,
    scheduler: Optional[Scheduler] = None,
    allow_deadlock: bool = False,
) -> Trace:
    """Convenience wrapper: run ``program`` under ``scheduler`` (round-robin default)."""
    return Interpreter(program, scheduler).run(allow_deadlock=allow_deadlock)
