"""A tiny concurrent programming language.

Programs are deliberately simple: each thread is a straight-line sequence
of statements over shared variables and locks (no branching -- the
detectors analyse *traces*, and straight-line threads are exactly what a
single logged execution looks like).  The statements are:

``Acquire(lock)`` / ``Release(lock)``
    lock operations (blocking acquire);
``Read(var)`` / ``Write(var)``
    shared-variable accesses;
``Compute(steps)``
    local work -- emits no events, but gives schedulers interleaving
    points;
``Fork(thread)`` / ``Join(thread)``
    thread lifecycle operations.

Every statement can carry a ``loc`` (program location) string; the
interpreter copies it onto the emitted events so race pairs can be
attributed to source locations, as in the paper's Table 1.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Statement:
    """Base class for statements; subclasses carry their operands."""

    __slots__ = ("loc",)

    def __init__(self, loc: Optional[str] = None) -> None:
        self.loc = loc

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return type(self).__name__

    def __repr__(self) -> str:
        return "%s(loc=%r)" % (self.describe(), self.loc)


class Acquire(Statement):
    """Blocking acquisition of ``lock``."""

    __slots__ = ("lock",)

    def __init__(self, lock: str, loc: Optional[str] = None) -> None:
        super().__init__(loc)
        self.lock = lock

    def describe(self) -> str:
        return "acq(%s)" % self.lock


class Release(Statement):
    """Release of ``lock``; the thread must currently hold it."""

    __slots__ = ("lock",)

    def __init__(self, lock: str, loc: Optional[str] = None) -> None:
        super().__init__(loc)
        self.lock = lock

    def describe(self) -> str:
        return "rel(%s)" % self.lock


class Read(Statement):
    """Read of shared variable ``var``."""

    __slots__ = ("var",)

    def __init__(self, var: str, loc: Optional[str] = None) -> None:
        super().__init__(loc)
        self.var = var

    def describe(self) -> str:
        return "r(%s)" % self.var


class Write(Statement):
    """Write of shared variable ``var``."""

    __slots__ = ("var",)

    def __init__(self, var: str, loc: Optional[str] = None) -> None:
        super().__init__(loc)
        self.var = var

    def describe(self) -> str:
        return "w(%s)" % self.var


class Compute(Statement):
    """Local computation of ``steps`` scheduler steps; emits no events."""

    __slots__ = ("steps",)

    def __init__(self, steps: int = 1, loc: Optional[str] = None) -> None:
        super().__init__(loc)
        if steps < 1:
            raise ValueError("Compute needs at least one step")
        self.steps = steps

    def describe(self) -> str:
        return "compute(%d)" % self.steps


class Fork(Statement):
    """Start thread ``thread`` (it must exist in the program)."""

    __slots__ = ("thread",)

    def __init__(self, thread: str, loc: Optional[str] = None) -> None:
        super().__init__(loc)
        self.thread = thread

    def describe(self) -> str:
        return "fork(%s)" % self.thread


class Join(Statement):
    """Wait for thread ``thread`` to finish."""

    __slots__ = ("thread",)

    def __init__(self, thread: str, loc: Optional[str] = None) -> None:
        super().__init__(loc)
        self.thread = thread

    def describe(self) -> str:
        return "join(%s)" % self.thread


class ThreadProgram:
    """A named, straight-line sequence of statements."""

    def __init__(self, name: str, statements: Iterable[Statement]) -> None:
        self.name = name
        self.statements: List[Statement] = list(statements)
        for position, statement in enumerate(self.statements):
            if statement.loc is None:
                statement.loc = "%s#%d:%s" % (name, position, statement.describe())

    def __len__(self) -> int:
        return len(self.statements)

    def __iter__(self):
        return iter(self.statements)

    def __repr__(self) -> str:
        return "ThreadProgram(%r, %d statements)" % (self.name, len(self.statements))


class Program:
    """A whole concurrent program: a set of thread programs.

    Parameters
    ----------
    threads:
        The thread programs, as a mapping or an iterable of
        :class:`ThreadProgram`.
    initial_threads:
        Threads that are runnable from the start.  Threads not listed here
        only become runnable once another thread forks them.  By default
        every thread is initially runnable unless some thread forks it.
    """

    def __init__(
        self,
        threads: "Dict[str, Sequence[Statement]] | Iterable[ThreadProgram]",
        initial_threads: Optional[Sequence[str]] = None,
        name: str = "program",
    ) -> None:
        self.name = name
        self.threads: Dict[str, ThreadProgram] = {}
        if isinstance(threads, dict):
            for thread_name, statements in threads.items():
                self.threads[thread_name] = ThreadProgram(thread_name, statements)
        else:
            for thread_program in threads:
                self.threads[thread_program.name] = thread_program

        if initial_threads is None:
            forked = {
                statement.thread
                for thread_program in self.threads.values()
                for statement in thread_program
                if isinstance(statement, Fork)
            }
            initial_threads = [
                thread for thread in self.threads if thread not in forked
            ]
        self.initial_threads: List[str] = list(initial_threads)

        for thread_program in self.threads.values():
            for statement in thread_program:
                if isinstance(statement, (Fork, Join)) and (
                    statement.thread not in self.threads
                ):
                    raise ValueError(
                        "statement %r refers to unknown thread %r"
                        % (statement, statement.thread)
                    )

    def thread_names(self) -> List[str]:
        """Return the names of all threads."""
        return list(self.threads)

    def __repr__(self) -> str:
        return "Program(%r, threads=%d)" % (self.name, len(self.threads))


def locked_increment(thread: str, lock: str, var: str) -> List[Statement]:
    """Return the statements of a lock-protected read-modify-write of ``var``."""
    return [Acquire(lock), Read(var), Write(var), Release(lock)]


def unlocked_increment(thread: str, var: str) -> List[Statement]:
    """Return the statements of an unprotected read-modify-write of ``var``."""
    return [Read(var), Write(var)]
