"""Schedulers for the concurrent-program interpreter.

A scheduler picks, at every step, which of the currently enabled threads
executes its next statement.  Different schedulers produce different traces
from the same program -- which is exactly the phenomenon dynamic race
prediction is about: the detectors must predict from *one* observed trace
the races that *other* schedules would expose.
"""

from __future__ import annotations

import abc
import itertools
import random
from typing import Iterator, List, Optional, Sequence


class Scheduler(abc.ABC):
    """Chooses the next thread to run among the enabled ones."""

    @abc.abstractmethod
    def pick(self, enabled: Sequence[str], step: int) -> str:
        """Return the thread (from ``enabled``, non-empty) to run at ``step``."""

    def reset(self) -> None:
        """Reset any internal state before a new run (default: no-op)."""


class RoundRobinScheduler(Scheduler):
    """Runs threads in a rotating order, ``quantum`` steps at a time.

    A large quantum produces mostly sequential traces (few context
    switches); a quantum of 1 maximises interleaving.
    """

    def __init__(self, quantum: int = 1) -> None:
        if quantum < 1:
            raise ValueError("quantum must be at least 1")
        self.quantum = quantum
        self._current: Optional[str] = None
        self._remaining = 0

    def reset(self) -> None:
        self._current = None
        self._remaining = 0

    def pick(self, enabled: Sequence[str], step: int) -> str:
        if self._current in enabled and self._remaining > 0:
            self._remaining -= 1
            return self._current
        if self._current in enabled:
            # Quantum expired: move to the next thread after the current one.
            position = list(enabled).index(self._current)
            chosen = enabled[(position + 1) % len(enabled)]
        else:
            chosen = enabled[0]
        self._current = chosen
        self._remaining = self.quantum - 1
        return chosen


class RandomScheduler(Scheduler):
    """Uniformly random scheduling with a reproducible seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def pick(self, enabled: Sequence[str], step: int) -> str:
        return self._rng.choice(list(enabled))


class ScriptedScheduler(Scheduler):
    """Follows a fixed list of thread choices, falling back when disabled.

    Useful in tests to force a specific interleaving: each entry names the
    thread to prefer at that step; if it is not enabled, the first enabled
    thread runs instead.  After the script is exhausted the first enabled
    thread always runs.
    """

    def __init__(self, script: Sequence[str]) -> None:
        self.script = list(script)

    def pick(self, enabled: Sequence[str], step: int) -> str:
        if step < len(self.script) and self.script[step] in enabled:
            return self.script[step]
        return enabled[0]


def enumerate_schedules(thread_names: Sequence[str], max_steps: int) -> Iterator[List[str]]:
    """Yield every thread-choice script of length ``max_steps``.

    Exponential; intended for exhaustively exploring tiny programs in tests
    (e.g. to confirm that a predicted race is realised by *some* schedule).
    """
    for script in itertools.product(thread_names, repeat=max_steps):
        yield list(script)
