"""repro -- a reproduction of "Dynamic Race Prediction in Linear Time" (PLDI 2017).

The package implements the Weak-Causally-Precedes (WCP) partial order and
its linear-time vector-clock detection algorithm, together with every
baseline and substrate the paper's evaluation relies on: happens-before
(plain and FastTrack), Causally-Precedes, an Eraser lockset detector, an
RVPredict-like windowed maximal-causal-model predictor, a
correct-reordering witness engine, a concurrent-program simulator and the
synthetic benchmark suite used to regenerate Table 1 and Figure 7.

Quickstart
----------
>>> from repro import TraceBuilder, detect_races
>>> trace = (TraceBuilder()
...          .write("t1", "y")
...          .acquire("t1", "l").read("t1", "x").release("t1", "l")
...          .acquire("t2", "l").read("t2", "x").release("t2", "l")
...          .read("t2", "y")
...          .build())
>>> report = detect_races(trace)            # WCP by default
>>> report.count()
1
"""

from repro.trace import (
    Event,
    EventType,
    Trace,
    TraceBuilder,
    load_trace,
    parse_std,
    parse_csv,
    write_std,
    write_csv,
    dump_trace,
)
from repro.core import Detector, RacePair, RaceReport, WCPDetector, WCPClosure
from repro.core.races import ReportSnapshot
from repro.hb import HBDetector, FastTrackDetector
from repro.cp import CPDetector, CPClosure
from repro.lockset import EraserDetector
from repro.mcm import MCMPredictor
from repro.engine import (
    AsyncEventSource,
    AsyncRaceEngine,
    Checkpoint,
    Checkpointer,
    CheckpointError,
    CheckpointMismatchError,
    CoordinatorFailure,
    CountingSource,
    EngineConfig,
    EngineResult,
    EventSource,
    Fault,
    FaultPlan,
    FileSource,
    IterableSource,
    LineProtocolSource,
    OnlineValidator,
    QueueSource,
    RaceEngine,
    RunSupervisor,
    ShardedEngine,
    ShardedResult,
    SimulatorSource,
    SupervisionSettings,
    TraceSource,
    ValidatingSource,
    WorkerDied,
    WorkerFailure,
    as_async_source,
    as_source,
)
from repro.api import (
    available_detectors,
    compare_detectors,
    detect_races,
    detect_races_async,
    make_detector,
    resume_engine,
    run_engine,
    run_engine_async,
    start_race_server,
)
from repro.client import (
    PushError,
    PushOutcome,
    RaceClient,
    RetriesExhausted,
    push_trace,
)
from repro.serve import (
    Overloaded,
    QuotaManager,
    RaceServer,
    ServeMetrics,
    ServeSettings,
    SessionManager,
    StreamSession,
    TenantQuota,
)

__version__ = "1.0.0"

__all__ = [
    "Event",
    "EventType",
    "Trace",
    "TraceBuilder",
    "load_trace",
    "parse_std",
    "parse_csv",
    "write_std",
    "write_csv",
    "dump_trace",
    "Detector",
    "RacePair",
    "RaceReport",
    "WCPDetector",
    "WCPClosure",
    "HBDetector",
    "FastTrackDetector",
    "CPDetector",
    "CPClosure",
    "EraserDetector",
    "MCMPredictor",
    "ReportSnapshot",
    "RaceEngine",
    "AsyncRaceEngine",
    "ShardedEngine",
    "ShardedResult",
    "Checkpoint",
    "Checkpointer",
    "CheckpointError",
    "CheckpointMismatchError",
    "CoordinatorFailure",
    "RunSupervisor",
    "EngineConfig",
    "EngineResult",
    "Fault",
    "FaultPlan",
    "SupervisionSettings",
    "WorkerDied",
    "WorkerFailure",
    "EventSource",
    "AsyncEventSource",
    "TraceSource",
    "FileSource",
    "IterableSource",
    "SimulatorSource",
    "CountingSource",
    "QueueSource",
    "LineProtocolSource",
    "OnlineValidator",
    "ValidatingSource",
    "as_source",
    "as_async_source",
    "detect_races",
    "detect_races_async",
    "compare_detectors",
    "available_detectors",
    "make_detector",
    "resume_engine",
    "run_engine",
    "run_engine_async",
    "start_race_server",
    "Overloaded",
    "PushError",
    "PushOutcome",
    "RaceClient",
    "RetriesExhausted",
    "push_trace",
    "QuotaManager",
    "RaceServer",
    "ServeMetrics",
    "ServeSettings",
    "SessionManager",
    "StreamSession",
    "TenantQuota",
    "__version__",
]
